"""Engine-level tests: suppressions, selection, JSON schema, errors."""

import pytest

from repro.devtools import (
    Finding,
    LintError,
    Rule,
    all_rules,
    findings_to_json,
    lint_paths,
    lint_source,
    resolve_rules,
    rule_names,
)
from repro.devtools.lint import logical_path, register_rule

CLOCK = "import time\n\n\ndef stamp():\n    return time.time()\n"


def _rules(name: str) -> tuple[str, ...]:
    return tuple(finding.rule for finding in lint_source(name))


class TestSuppressions:
    def test_same_line_suppression_covers_its_own_line(self):
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: allow[nondeterminism]: test fixture\n"
        )
        assert lint_source(source) == []

    def test_own_line_comment_covers_the_next_line(self):
        source = (
            "import time\n"
            "# repro-lint: allow[nondeterminism]: test fixture\n"
            "t = time.time()\n"
        )
        assert lint_source(source) == []

    def test_own_line_comment_does_not_reach_two_lines_down(self):
        source = (
            "import time\n"
            "# repro-lint: allow[nondeterminism]: test fixture\n"
            "x = 1\n"
            "t = time.time()\n"
        )
        rules = {finding.rule for finding in lint_source(source)}
        # The clock call stays a finding AND the suppression is unused.
        assert rules == {"nondeterminism", "suppression"}

    def test_suppression_for_the_wrong_rule_does_not_apply(self):
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: allow[global-rng]: wrong rule\n"
        )
        rules = {finding.rule for finding in lint_source(source)}
        assert rules == {"nondeterminism", "suppression"}

    def test_missing_reason_is_a_finding_and_suppresses_nothing(self):
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: allow[nondeterminism]\n"
        )
        findings = lint_source(source)
        assert {finding.rule for finding in findings} == {
            "nondeterminism",
            "suppression",
        }
        assert any("non-empty" in finding.message for finding in findings)

    def test_unknown_rule_in_allow_is_a_finding(self):
        source = "x = 1  # repro-lint: allow[not-a-rule]: because\n"
        (finding,) = lint_source(source)
        assert finding.rule == "suppression"
        assert "not-a-rule" in finding.message
        assert "valid rules" in finding.message

    def test_malformed_repro_lint_comment_is_a_finding(self):
        source = "x = 1  # repro-lint: please ignore this\n"
        (finding,) = lint_source(source)
        assert finding.rule == "suppression"
        assert "malformed" in finding.message

    def test_empty_allow_list_is_a_finding(self):
        source = "x = 1  # repro-lint: allow[]: reason\n"
        (finding,) = lint_source(source)
        assert finding.rule == "suppression"
        assert "names no rule" in finding.message

    def test_unused_suppression_is_an_error(self):
        source = "x = 1  # repro-lint: allow[nondeterminism]: stale excuse\n"
        (finding,) = lint_source(source)
        assert finding.rule == "suppression"
        assert "unused suppression" in finding.message

    def test_unused_suppression_ignored_when_its_rule_did_not_run(self):
        # `--rules global-rng` must not condemn an allow[silent-except]
        # elsewhere in the file: that rule's findings never existed this
        # run, so "unused" cannot be judged.
        source = "x = 1  # repro-lint: allow[silent-except]: io-layer excuse\n"
        assert lint_source(source, rules=resolve_rules(["global-rng"])) == []
        assert lint_source(source)  # full run: unused, flagged

    def test_multi_rule_suppression_counts_each_use(self):
        source = (
            "import time\n"
            "def f(xs=[], t=time.time()):  # repro-lint: allow[mutable-pitfalls,nondeterminism]: test fixture\n"
            "    return xs, t\n"
        )
        assert lint_source(source) == []


class TestEngine:
    def test_syntax_error_is_a_single_finding(self):
        findings = lint_source("def broken(:\n", file="broken.py")
        (finding,) = findings
        assert finding.rule == "syntax-error"
        assert finding.file == "broken.py"
        assert finding.line >= 1

    def test_findings_sorted_by_location(self):
        source = (
            "import time\n"
            "def f(xs=[]):\n"
            "    return time.time()\n"
        )
        findings = lint_source(source)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_finding_render_is_clickable(self):
        finding = Finding(
            file="repro/x.py", line=3, col=4, rule="global-rng", message="m"
        )
        assert finding.location == "repro/x.py:3:4"
        assert finding.render() == "repro/x.py:3:4: global-rng [error]: m"

    def test_rule_registry_is_complete_and_ordered(self):
        assert rule_names() == (
            "global-rng",
            "nondeterminism",
            "trusted-constructor",
            "registry-contract",
            "mutable-pitfalls",
            "silent-except",
            "spec-literals",
        )
        codes = [rule.code for rule in all_rules()]
        assert codes == [f"R{i}" for i in range(1, 8)]

    def test_resolve_rules_none_selects_all(self):
        assert resolve_rules(None) == all_rules()

    def test_resolve_rules_subset_preserves_request_order(self):
        selected = resolve_rules(["silent-except", "global-rng"])
        assert [rule.name for rule in selected] == ["silent-except", "global-rng"]

    def test_resolve_rules_unknown_name_lists_valid_rules(self):
        with pytest.raises(LintError, match="bogus.*valid rules.*global-rng"):
            resolve_rules(["bogus"])

    def test_resolve_rules_empty_selection_is_an_error(self):
        with pytest.raises(LintError, match="no rules selected"):
            resolve_rules([])

    def test_lint_paths_missing_path_is_loud(self, tmp_path):
        with pytest.raises(LintError, match="no such file or directory"):
            lint_paths([tmp_path / "nope"])

    def test_lint_paths_recurses_directories(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.py").write_text(CLOCK)
        (tmp_path / "b.py").write_text("x = 1\n")
        findings = lint_paths([tmp_path])
        assert [finding.rule for finding in findings] == ["nondeterminism"]
        assert findings[0].file.endswith("a.py")

    def test_register_rule_rejects_duplicates_and_reserved_names(self):
        taken = all_rules()[0]
        with pytest.raises(ValueError, match="already registered"):
            register_rule(taken)
        for reserved in ("suppression", "syntax-error"):
            bad = Rule(
                name=reserved,
                code="R99",
                summary="s",
                invariant="i",
                check=lambda ctx: (),
            )
            with pytest.raises(ValueError, match="reserved"):
                register_rule(bad)

    def test_logical_path_maps_into_the_package(self):
        import repro

        from pathlib import Path

        cli = Path(repro.__file__).parent / "cli.py"
        assert logical_path(cli) == "repro/cli.py"

    def test_logical_path_keeps_basenames_outside_the_package(self, tmp_path):
        loose = tmp_path / "scratch.py"
        loose.write_text("x = 1\n")
        assert logical_path(loose) == "scratch.py"


class TestJson:
    def test_schema_fields(self):
        findings = lint_source(CLOCK, file="clock.py")
        payload = findings_to_json(findings)
        assert payload["version"] == 1
        assert payload["rules"] == list(rule_names())
        assert payload["count"] == len(findings) == 1
        assert payload["errors"] == 1
        (entry,) = payload["findings"]
        assert entry == {
            "file": "clock.py",
            "line": findings[0].line,
            "col": findings[0].col,
            "rule": "nondeterminism",
            "severity": "error",
            "message": findings[0].message,
        }

    def test_clean_run_payload(self):
        payload = findings_to_json([], rules=resolve_rules(["global-rng"]))
        assert payload == {
            "version": 1,
            "rules": ["global-rng"],
            "count": 0,
            "errors": 0,
            "findings": [],
        }

    def test_payload_is_json_serializable(self):
        import json

        payload = findings_to_json(lint_source(CLOCK))
        assert json.loads(json.dumps(payload)) == payload


def test_every_rule_documents_its_invariant():
    for rule in all_rules():
        assert rule.summary and rule.invariant, rule.name
        assert rule.severity in ("error", "warning")
