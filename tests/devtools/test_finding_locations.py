"""Property tests: Finding locations point at real file/line/col.

A finding whose location does not exist, or whose column runs past the
end of its line, is worse than useless — CI logs would send a
contributor to the wrong place.  The fixture corpus (which produces
findings from every rule) and the src tree are both checked, and a
hypothesis property asserts locations track the source when it moves.
"""

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.devtools import lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(repro.__file__).parent

BAD_SOURCE = (
    "import time\n"
    "import numpy as np\n"
    "\n"
    "\n"
    "def cell(flows, bucket=[]):\n"
    "    bucket.append((time.time(), np.random.rand()))\n"
    "    return bucket\n"
)


def _assert_real_location(finding):
    path = Path(finding.file)
    assert path.is_file(), finding.render()
    lines = path.read_text(encoding="utf-8").splitlines()
    assert 1 <= finding.line <= len(lines), finding.render()
    line_text = lines[finding.line - 1]
    assert 0 <= finding.col <= len(line_text), finding.render()


def test_every_fixture_finding_points_at_a_real_location():
    findings = lint_paths([FIXTURES])
    assert findings, "fixture corpus should produce findings"
    for finding in findings:
        _assert_real_location(finding)


def test_src_tree_findings_would_point_at_real_locations():
    # The tree is clean (see test_src_clean), so this mostly asserts
    # lint_paths visits real files without raising; any finding that
    # does appear must still carry a valid location.
    for finding in lint_paths([SRC]):
        _assert_real_location(finding)


def test_finding_columns_index_the_named_construct():
    findings = lint_source(BAD_SOURCE, file="bad.py")
    spotted = {
        BAD_SOURCE.splitlines()[f.line - 1][f.col :].split("(")[0]
        for f in findings
    }
    assert "time.time" in spotted
    assert "np.random.rand" in spotted


@settings(max_examples=25, deadline=None)
@given(pad=st.integers(min_value=0, max_value=40))
def test_finding_lines_shift_with_the_source(pad):
    baseline = {(f.line, f.col, f.rule) for f in lint_source(BAD_SOURCE)}
    shifted_source = "\n" * pad + BAD_SOURCE
    shifted = {(f.line, f.col, f.rule) for f in lint_source(shifted_source)}
    assert shifted == {(line + pad, col, rule) for line, col, rule in baseline}
