"""Tests for the combined reshaping+morphing defense (Sec. V-C)."""

import pytest

from repro.core.combined import CombinedDefense
from repro.core.schedulers import OrthogonalReshaper
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator


@pytest.fixture(scope="module")
def traces():
    generator = TrafficGenerator(seed=11)
    return {
        "bt": generator.generate(AppType.BITTORRENT, 40.0),
        "gaming": generator.generate(AppType.GAMING, 40.0),
        "browsing": generator.generate(AppType.BROWSING, 40.0),
    }


class TestCombinedDefense:
    def test_unmorphed_interfaces_pass_through(self, traces):
        defense = CombinedDefense(
            OrthogonalReshaper.paper_default(), interface_targets={}, seed=0
        )
        defended = defense.apply(traces["bt"])
        assert defended.extra_bytes == 0
        assert sum(len(f) for f in defended.flows.values()) == len(traces["bt"])

    def test_morphing_one_interface_adds_bounded_overhead(self, traces):
        defense = CombinedDefense(
            OrthogonalReshaper.paper_default(),
            interface_targets={0: traces["gaming"]},
            seed=0,
        )
        defended = defense.apply(traces["bt"])
        assert defended.extra_bytes > 0
        # Only the small-packet interface is morphed, so the overhead is
        # far below morphing the whole flow (Sec. V-C's selling point).
        assert defended.overhead_fraction < 0.5

    def test_morphed_interface_distribution_changes(self, traces):
        defense = CombinedDefense(
            OrthogonalReshaper.paper_default(),
            interface_targets={0: traces["gaming"]},
            seed=0,
        )
        defended = defense.apply(traces["bt"])
        morphed = defended.flows[0]
        # Interface 0 originally carries only <=232-byte packets; after
        # morphing toward gaming its sizes spread upward.
        assert morphed.sizes.max() > 232

    def test_flows_keyed_by_interface(self, traces):
        defense = CombinedDefense(
            OrthogonalReshaper.paper_default(),
            interface_targets={0: traces["gaming"], 1: traces["browsing"]},
            seed=0,
        )
        defended = defense.apply(traces["bt"])
        assert set(defended.flows) <= {0, 1, 2}
