"""Tests for target distributions and the paper's range sets."""

import numpy as np
import pytest

from repro.core.targets import (
    FIG4_RANGES,
    PAPER_RANGES_I2,
    PAPER_RANGES_I3,
    PAPER_RANGES_I5,
    TargetDistribution,
    orthogonal_targets,
    paper_ranges,
)


class TestPaperRanges:
    def test_fig4_ranges(self):
        assert FIG4_RANGES == (525, 1050, 1576)

    def test_default_ranges(self):
        # Sec. IV-B: (0, 232], (232, 1540], (1540, 1576].
        assert PAPER_RANGES_I3 == (232, 1540, 1576)

    def test_table5_ranges(self):
        assert PAPER_RANGES_I2 == (1500, 1576)
        assert PAPER_RANGES_I5 == (232, 500, 1000, 1540, 1576)

    def test_lookup(self):
        assert paper_ranges(3) == PAPER_RANGES_I3

    def test_unknown_interface_count(self):
        with pytest.raises(ValueError):
            paper_ranges(4)


class TestTargetDistribution:
    def test_orthogonal_identity(self):
        targets = orthogonal_targets(PAPER_RANGES_I3)
        assert targets.interfaces == 3
        assert targets.ranges == 3
        assert targets.is_orthogonal()

    def test_owning_interface(self):
        targets = orthogonal_targets(PAPER_RANGES_I3)
        assert list(targets.owning_interface()) == [0, 1, 2]

    def test_range_of_vectorized(self):
        targets = orthogonal_targets(PAPER_RANGES_I3)
        sizes = np.array([1, 232, 233, 1540, 1541, 1576, 2000])
        assert list(targets.range_of(sizes)) == [0, 0, 1, 1, 2, 2, 2]

    def test_non_orthogonal_detected(self):
        matrix = np.array([[0.5, 0.5, 0.0], [0.0, 0.5, 0.5], [0.5, 0.0, 0.5]])
        targets = TargetDistribution(PAPER_RANGES_I3, matrix)
        assert not targets.is_orthogonal()
        with pytest.raises(ValueError):
            targets.owning_interface()

    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            TargetDistribution(PAPER_RANGES_I3, np.full((3, 3), 0.5))

    def test_rejects_negative_probabilities(self):
        matrix = np.array([[1.5, -0.5, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        with pytest.raises(ValueError, match=">= 0"):
            TargetDistribution(PAPER_RANGES_I3, matrix)

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            TargetDistribution((500, 200, 1576), np.eye(3))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            TargetDistribution((232, 1576), np.eye(3))

    def test_eq2_orthogonality_definition(self):
        # Eq. 2: dot products of distinct rows are zero.
        targets = orthogonal_targets(FIG4_RANGES)
        gram = targets.matrix @ targets.matrix.T
        assert np.allclose(gram, np.eye(3))
