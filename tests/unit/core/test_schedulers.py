"""Tests for the concrete reshaping schedulers."""

import numpy as np
import pytest

from repro.core.schedulers import (
    FrequencyHoppingScheduler,
    ModuloReshaper,
    OrthogonalReshaper,
    RandomReshaper,
    RoundRobinReshaper,
)
from repro.traffic.trace import Trace


@pytest.fixture
def mixed_trace():
    return Trace.from_arrays(
        times=np.linspace(0.0, 9.0, 10),
        sizes=[100, 200, 500, 1000, 1550, 1576, 150, 700, 1545, 1200],
        directions=[0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
    )


class TestRandomReshaper:
    def test_indices_in_range(self, mixed_trace):
        reshaper = RandomReshaper(interfaces=3, seed=1)
        assert set(reshaper.assign_trace(mixed_trace)) <= {0, 1, 2}

    def test_reset_restores_stream(self, mixed_trace):
        reshaper = RandomReshaper(interfaces=3, seed=1)
        first = reshaper.assign_trace(mixed_trace)
        reshaper.reset()
        assert np.array_equal(first, reshaper.assign_trace(mixed_trace))

    def test_roughly_uniform(self):
        trace = Trace.from_arrays(np.arange(3000) * 0.001, np.full(3000, 100))
        counts = np.bincount(RandomReshaper(3, seed=2).assign_trace(trace), minlength=3)
        assert counts.min() > 800

    def test_rejects_zero_interfaces(self):
        with pytest.raises(ValueError):
            RandomReshaper(interfaces=0)


class TestRoundRobin:
    def test_per_direction_rotation(self, mixed_trace):
        reshaper = RoundRobinReshaper(interfaces=3)
        out = reshaper.assign_trace(mixed_trace)
        down = out[mixed_trace.directions == 0]
        up = out[mixed_trace.directions == 1]
        assert list(down) == [0, 1, 2, 0, 1]
        assert list(up) == [0, 1, 2, 0, 1]

    def test_online_matches_batch(self, mixed_trace):
        online = RoundRobinReshaper(interfaces=3)
        batch = RoundRobinReshaper(interfaces=3)
        one_by_one = [
            online.assign_packet(
                float(mixed_trace.times[i]),
                int(mixed_trace.sizes[i]),
                int(mixed_trace.directions[i]),
            )
            for i in range(len(mixed_trace))
        ]
        assert one_by_one == list(batch.assign_trace(mixed_trace))

    def test_state_persists_across_traces(self, mixed_trace):
        reshaper = RoundRobinReshaper(interfaces=3)
        first = reshaper.assign_trace(mixed_trace)
        second = reshaper.assign_trace(mixed_trace)
        # Rotation continues: 5 downlink packets consumed, so the next
        # downlink assignment starts at 5 % 3 == 2.
        down_second = second[mixed_trace.directions == 0]
        assert down_second[0] == 2

    def test_reset(self, mixed_trace):
        reshaper = RoundRobinReshaper(interfaces=3)
        reshaper.assign_trace(mixed_trace)
        reshaper.reset()
        assert reshaper.assign_trace(mixed_trace)[0] == 0


class TestOrthogonalReshaper:
    def test_paper_default_ranges(self, mixed_trace):
        reshaper = OrthogonalReshaper.paper_default()
        out = reshaper.assign_trace(mixed_trace)
        # sizes: 100,200 -> 0; 500,1000,700,1200,1540-  -> 1; >1540 -> 2
        expected = [0, 0, 1, 1, 2, 2, 0, 1, 2, 1]
        assert list(out) == expected

    def test_online_matches_batch(self, mixed_trace):
        reshaper = OrthogonalReshaper.paper_default()
        online = [
            reshaper.assign_packet(0.0, int(s), 0) for s in mixed_trace.sizes
        ]
        assert online == list(reshaper.assign_trace(mixed_trace))

    def test_interfaces_property(self):
        assert OrthogonalReshaper.paper_default(5).interfaces == 5

    def test_boundaries_exposed(self):
        assert OrthogonalReshaper.paper_default().boundaries == (232, 1540, 1576)

    def test_fig4_example(self):
        # Fig. 4: ranges (0,525], (525,1050], (1050,1576].
        reshaper = OrthogonalReshaper.from_boundaries((525, 1050, 1576))
        assert reshaper.assign_packet(0.0, 400, 0) == 0
        assert reshaper.assign_packet(0.0, 800, 0) == 1
        assert reshaper.assign_packet(0.0, 1500, 0) == 2


class TestModuloReshaper:
    def test_matches_paper_formula(self, mixed_trace):
        # Fig. 5: i = L(s_k) mod I.
        reshaper = ModuloReshaper(interfaces=3)
        out = reshaper.assign_trace(mixed_trace)
        assert list(out) == [int(s) % 3 for s in mixed_trace.sizes]

    def test_online_matches_batch(self, mixed_trace):
        reshaper = ModuloReshaper(interfaces=3)
        online = [reshaper.assign_packet(0.0, int(s), 0) for s in mixed_trace.sizes]
        assert online == list(reshaper.assign_trace(mixed_trace))


class TestFrequencyHopping:
    def test_footnote2_configuration(self):
        scheduler = FrequencyHoppingScheduler()
        assert scheduler.channels == (1, 6, 11)
        assert scheduler.dwell == 0.5

    def test_slot_rotation(self):
        scheduler = FrequencyHoppingScheduler(dwell=0.5)
        times = np.array([0.0, 0.4, 0.5, 1.0, 1.5, 2.9])
        assert list(scheduler.slot_of(times)) == [0, 0, 1, 2, 0, 2]

    def test_channel_of(self):
        scheduler = FrequencyHoppingScheduler(dwell=0.5)
        assert list(scheduler.channel_of(np.array([0.0, 0.5, 1.0]))) == [1, 6, 11]

    def test_reshape_stamps_channels(self, mixed_trace):
        reshaped = FrequencyHoppingScheduler(dwell=0.5).reshape(mixed_trace)
        assert set(reshaped.channels.tolist()) <= {1, 6, 11}

    def test_rejects_bad_dwell(self):
        with pytest.raises(ValueError):
            FrequencyHoppingScheduler(dwell=0.0)
