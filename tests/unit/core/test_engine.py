"""Tests for the reshaping engine."""

import numpy as np
import pytest

from repro.core.engine import ReshapingEngine
from repro.core.schedulers import OrthogonalReshaper, RoundRobinReshaper
from repro.traffic.trace import Trace


@pytest.fixture
def trace():
    rng = np.random.default_rng(3)
    sizes = rng.choice([150, 700, 1570], size=300)
    return Trace.from_arrays(np.arange(300) * 0.02, sizes, label="bt")


class TestApply:
    def test_flows_partition_the_trace(self, trace):
        engine = ReshapingEngine(OrthogonalReshaper.paper_default())
        result = engine.apply(trace)
        assert sum(len(f) for f in result.flows.values()) == len(trace)
        assert result.interface_count == 3

    def test_zero_data_overhead(self, trace):
        # Sec. V-B: reshaping adds no noise traffic.
        engine = ReshapingEngine(OrthogonalReshaper.paper_default())
        assert engine.apply(trace).data_overhead_bytes == 0

    def test_config_overhead_is_two_messages(self, trace):
        engine = ReshapingEngine(OrthogonalReshaper.paper_default())
        assert engine.config_overhead_bytes == 2 * 196

    def test_observable_flows_order(self, trace):
        engine = ReshapingEngine(OrthogonalReshaper.paper_default())
        result = engine.apply(trace)
        flows = result.observable_flows
        assert len(flows) == len(result.flows)

    def test_scheduler_resets_between_traces(self, trace):
        engine = ReshapingEngine(RoundRobinReshaper(interfaces=3))
        first = engine.apply(trace).reshaped.ifaces.copy()
        second = engine.apply(trace).reshaped.ifaces
        assert np.array_equal(first, second)

    def test_apply_many(self, trace):
        engine = ReshapingEngine(OrthogonalReshaper.paper_default())
        results = engine.apply_many([trace, trace])
        assert len(results) == 2

    def test_verification_can_be_disabled(self, trace):
        engine = ReshapingEngine(OrthogonalReshaper.paper_default(), verify=False)
        assert engine.apply(trace).interface_count == 3
