"""Reset-semantics column assignment (`Reshaper.assign_columns`).

The fused evaluation path never constructs a Trace, so each scheduler
must reproduce — bit for bit — what a freshly reset instance's
``assign_trace`` would emit, from raw columns alone.  Statefulness is
the trap: ``assign_columns`` must ignore accumulated online state
(that's what "reset semantics" means), and schedulers whose recurrence
cannot be written in closed form must decline with ``None``.
"""

import numpy as np
import pytest

from repro.core.adaptive import QuantileBoundaryReshaper
from repro.core.base import Reshaper
from repro.core.schedulers import (
    FrequencyHoppingScheduler,
    ModuloReshaper,
    OrthogonalReshaper,
    RandomReshaper,
    RoundRobinReshaper,
)
from repro.core.target_driven import TargetDrivenReshaper
from repro.core.targets import TargetDistribution
from repro.traffic.trace import Trace


def make_trace(n=400, seed=0):
    rng = np.random.default_rng(seed)
    return Trace.from_arrays(
        np.sort(rng.uniform(0.0, 30.0, n)),
        rng.integers(1, 1577, n),
        directions=rng.choice([0, 1], n),
    )


def schedulers():
    calibration = make_trace(seed=3)
    return [
        RandomReshaper(interfaces=3, seed=7),
        RoundRobinReshaper(interfaces=3),
        OrthogonalReshaper.paper_default(3),
        ModuloReshaper(interfaces=4),
        FrequencyHoppingScheduler(),
        QuantileBoundaryReshaper.fit(calibration, interfaces=3),
    ]


class TestAssignColumnsBitIdentity:
    @pytest.mark.parametrize(
        "reshaper", schedulers(), ids=lambda r: type(r).__name__
    )
    def test_matches_reset_assign_trace(self, reshaper):
        trace = make_trace()
        reshaper.reset()
        reference = reshaper.assign_trace(trace)
        vectorized = reshaper.assign_columns(
            trace.times, trace.sizes, trace.directions
        )
        assert vectorized is not None
        assert vectorized.dtype == reference.dtype
        np.testing.assert_array_equal(vectorized, reference)

    @pytest.mark.parametrize(
        "reshaper", schedulers(), ids=lambda r: type(r).__name__
    )
    def test_ignores_accumulated_state(self, reshaper):
        """Columns answer as a *fresh* scheduler even after online use."""
        trace = make_trace()
        reshaper.reset()
        reference = reshaper.assign_trace(trace)
        # Poison any online state, then ask again at the column level.
        for k in range(17):
            reshaper.assign_packet(time=float(k), size=100 + k, direction=k % 2)
        vectorized = reshaper.assign_columns(
            trace.times, trace.sizes, trace.directions
        )
        np.testing.assert_array_equal(vectorized, reference)

    @pytest.mark.parametrize(
        "reshaper", schedulers(), ids=lambda r: type(r).__name__
    )
    def test_empty_columns(self, reshaper):
        out = reshaper.assign_columns(
            np.empty(0), np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int8)
        )
        assert len(out) == 0

    def test_default_declines(self):
        """Schedulers without a closed form fall back via ``None``."""

        class Sequential(Reshaper):
            @property
            def interfaces(self):
                return 2

            def assign_packet(self, time, size, direction):
                return 0

        trace = make_trace(n=5)
        assert (
            Sequential().assign_columns(trace.times, trace.sizes, trace.directions)
            is None
        )

    def test_target_driven_declines(self):
        """The greedy recurrence has no closed form — it must decline."""
        targets = TargetDistribution((800, 1576), np.array([[0.6, 0.4], [0.4, 0.6]]))
        reshaper = TargetDrivenReshaper(targets)
        trace = make_trace(n=20)
        assert (
            reshaper.assign_columns(trace.times, trace.sizes, trace.directions)
            is None
        )


class TestTargetDrivenIncrementalDeviation:
    """The cached-deviation batch loop is bit-identical to per-packet replay."""

    def _targets(self):
        matrix = np.array([[0.5, 0.3, 0.2], [0.2, 0.3, 0.5], [0.3, 0.4, 0.3]])
        return TargetDistribution((500, 1000, 1576), matrix)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_assign_trace_matches_per_packet_replay(self, seed):
        trace = make_trace(n=300, seed=seed)
        batch = TargetDrivenReshaper(self._targets())
        online = TargetDrivenReshaper(self._targets())
        one_by_one = [
            online.assign_packet(
                float(trace.times[k]), int(trace.sizes[k]), int(trace.directions[k])
            )
            for k in range(len(trace))
        ]
        np.testing.assert_array_equal(batch.assign_trace(trace), one_by_one)
        np.testing.assert_array_equal(batch._counts, online._counts)

    def test_resumes_from_accumulated_state(self):
        """Mid-stream batch calls continue the online recurrence exactly."""
        trace = make_trace(n=200, seed=9)
        first = trace.select(np.arange(200) < 100)
        second = trace.select(np.arange(200) >= 100)
        split = TargetDrivenReshaper(self._targets())
        whole = TargetDrivenReshaper(self._targets())
        resumed = np.concatenate(
            [split.assign_trace(first), split.assign_trace(second)]
        )
        np.testing.assert_array_equal(resumed, whole.assign_trace(trace))
