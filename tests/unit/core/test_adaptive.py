"""Tests for quantile-based boundary selection."""

import numpy as np
import pytest

from repro.core.adaptive import QuantileBoundaryReshaper, quantile_boundaries
from repro.core.engine import ReshapingEngine
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator
from repro.traffic.sizes import MAX_PACKET_SIZE
from repro.traffic.trace import Trace


class TestQuantileBoundaries:
    def test_strictly_increasing(self):
        sizes = np.array([100, 100, 100, 100, 100])  # degenerate
        boundaries = quantile_boundaries(sizes, 3)
        assert all(b2 > b1 for b1, b2 in zip(boundaries, boundaries[1:]))

    def test_last_boundary_covers_max(self):
        boundaries = quantile_boundaries(np.array([10, 20, 30]), 2)
        assert boundaries[-1] >= MAX_PACKET_SIZE

    def test_equal_mass_on_uniform_sizes(self):
        sizes = np.arange(1, 1501)
        boundaries = quantile_boundaries(sizes, 3)
        assert boundaries[0] == pytest.approx(500, abs=2)
        assert boundaries[1] == pytest.approx(1000, abs=2)

    def test_rejects_empty_calibration(self):
        with pytest.raises(ValueError):
            quantile_boundaries(np.array([]), 3)


class TestQuantileBoundaryReshaper:
    @pytest.fixture(scope="class")
    def bt(self):
        return TrafficGenerator(seed=71).generate(AppType.BITTORRENT, 60.0)

    def test_fit_and_partition(self, bt):
        reshaper = QuantileBoundaryReshaper.fit(bt, interfaces=3)
        result = ReshapingEngine(reshaper).apply(bt)
        counts = [len(flow) for flow in result.flows.values()]
        # Equal-mass boundaries balance the interfaces far better than the
        # fixed paper ranges do on a bimodal flow.
        assert min(counts) > 0.1 * max(counts)
        assert sum(counts) == len(bt)

    def test_refit_adapts_to_new_traffic(self, bt):
        reshaper = QuantileBoundaryReshaper.fit(bt, interfaces=3)
        chat = TrafficGenerator(seed=72).generate(AppType.CHATTING, 60.0)
        refit = reshaper.refit(chat)
        assert refit.interfaces == 3
        assert refit.boundaries != reshaper.boundaries

    def test_online_matches_batch(self, bt):
        reshaper = QuantileBoundaryReshaper.fit(bt, interfaces=3)
        online = [
            reshaper.assign_packet(0.0, int(size), 0) for size in bt.sizes[:200]
        ]
        sub = Trace(
            bt.times[:200], bt.sizes[:200], bt.directions[:200],
            bt.ifaces[:200], bt.channels[:200], bt.rssi[:200],
        )
        assert online == list(reshaper.assign_trace(sub))
