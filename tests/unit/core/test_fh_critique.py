"""The paper's critique of frequency hopping, verified (Sec. II-B).

"If the adversary accumulates the traffic traces in discrete time
intervals, it is as if the adversary is monitoring all traffic in a
smaller time scale" — i.e., a channel slice of an FH-partitioned flow
preserves the original size features, which is why FH barely reduces
classification accuracy (Tables II/III).
"""

import numpy as np
import pytest

from repro.core.engine import ReshapingEngine
from repro.core.schedulers import FrequencyHoppingScheduler, OrthogonalReshaper
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator


@pytest.fixture(scope="module")
def bt():
    return TrafficGenerator(seed=91).generate(AppType.BITTORRENT, 90.0)


def test_fh_slices_keep_the_original_size_profile(bt):
    engine = ReshapingEngine(FrequencyHoppingScheduler())
    result = engine.apply(bt)
    original_mean = bt.sizes.mean()
    original_std = bt.sizes.std()
    for flow in result.flows.values():
        if len(flow) < 100:
            continue
        # "The main feature, 'average packet size,' is almost unchanged."
        assert flow.sizes.mean() == pytest.approx(original_mean, rel=0.1)
        assert flow.sizes.std() == pytest.approx(original_std, rel=0.2)


def test_or_interfaces_break_the_size_profile(bt):
    # The contrast: OR's per-interface means differ wildly from the original.
    engine = ReshapingEngine(OrthogonalReshaper.paper_default())
    result = engine.apply(bt)
    original_mean = bt.sizes.mean()
    deviations = [
        abs(flow.sizes.mean() - original_mean)
        for flow in result.flows.values()
        if len(flow) >= 100
    ]
    assert min(deviations) > 0.2 * original_mean


def test_fh_slices_cover_all_channels(bt):
    scheduler = FrequencyHoppingScheduler()
    reshaped = scheduler.reshape(bt)
    assert set(np.unique(reshaped.channels)) == {1, 6, 11}


def test_fh_dwell_bounds_slice_contiguity(bt):
    # Each captured slice lives inside its 500 ms dwell windows: the gap
    # between consecutive packets of one slot is either < dwell or
    # >= 2 * dwell (the off-channel period).
    scheduler = FrequencyHoppingScheduler(dwell=0.5)
    reshaped = scheduler.reshape(bt)
    slot0 = reshaped.iface_view(0)
    gaps = np.diff(slot0.times)
    in_dwell = gaps < 0.5
    off_channel = gaps >= 1.0 - 1e-9
    assert np.all(in_dwell | off_channel)
