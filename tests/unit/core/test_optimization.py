"""Tests for the Eq. 1 optimization machinery."""

import numpy as np
import pytest

from repro.core.optimization import (
    ReshapingObjective,
    interface_distributions,
    objective_value,
    verify_partition,
)
from repro.core.schedulers import OrthogonalReshaper, RandomReshaper
from repro.core.targets import orthogonal_targets
from repro.traffic.trace import Trace


@pytest.fixture
def trace():
    rng = np.random.default_rng(0)
    sizes = rng.choice([150, 700, 1570], size=600, p=[0.4, 0.3, 0.3])
    return Trace.from_arrays(np.arange(600) * 0.01, sizes)


class TestInterfaceDistributions:
    def test_shapes(self, trace):
        targets = orthogonal_targets((232, 1540, 1576))
        reshaped = OrthogonalReshaper(targets).reshape(trace)
        p, counts = interface_distributions(reshaped, targets)
        assert p.shape == (3, 3)
        assert counts.sum() == len(trace)

    def test_empty_interface_row_is_zero(self, trace):
        targets = orthogonal_targets((232, 1540, 1576))
        p, counts = interface_distributions(trace, targets)  # all on iface 0
        assert counts[1] == counts[2] == 0
        assert np.all(p[1] == 0) and np.all(p[2] == 0)


class TestObjective:
    def test_or_achieves_zero(self, trace):
        # Sec. III-C-2: OR satisfies p_i == phi_i exactly.
        targets = orthogonal_targets((232, 1540, 1576))
        reshaped = OrthogonalReshaper(targets).reshape(trace)
        objective = ReshapingObjective.evaluate(reshaped, targets)
        assert objective.is_optimal
        assert objective.value == pytest.approx(0.0, abs=1e-12)

    def test_random_does_not_achieve_zero(self, trace):
        targets = orthogonal_targets((232, 1540, 1576))
        reshaped = RandomReshaper(interfaces=3, seed=0).reshape(trace)
        objective = ReshapingObjective.evaluate(reshaped, targets)
        assert objective.value > 0.5

    def test_objective_value_shape_check(self):
        targets = orthogonal_targets((232, 1576))
        with pytest.raises(ValueError):
            objective_value(np.eye(3), targets)

    def test_per_interface_deviation_sums_to_value(self, trace):
        targets = orthogonal_targets((232, 1540, 1576))
        reshaped = RandomReshaper(interfaces=3, seed=0).reshape(trace)
        objective = ReshapingObjective.evaluate(reshaped, targets)
        assert sum(objective.per_interface_deviation) == pytest.approx(objective.value)


class TestVerifyPartition:
    def test_accepts_pure_relabeling(self, trace):
        reshaped = OrthogonalReshaper.paper_default().reshape(trace)
        verify_partition(trace, reshaped)  # must not raise

    def test_rejects_size_changes(self, trace):
        tampered = trace.with_sizes(trace.sizes + 1)
        with pytest.raises(AssertionError, match="sizes"):
            verify_partition(trace, tampered)

    def test_rejects_packet_loss(self, trace):
        shorter = trace.select(np.arange(len(trace)) < len(trace) - 1)
        with pytest.raises(AssertionError, match="count"):
            verify_partition(trace, shorter)
