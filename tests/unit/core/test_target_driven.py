"""Tests for the greedy target-driven scheduler (generalized Eq. 1)."""

import numpy as np
import pytest

from repro.core.target_driven import TargetDrivenReshaper
from repro.core.targets import TargetDistribution, orthogonal_targets
from repro.traffic.trace import Trace


@pytest.fixture
def trace():
    rng = np.random.default_rng(1)
    sizes = rng.choice([150, 700, 1570], size=900, p=[0.5, 0.25, 0.25])
    return Trace.from_arrays(np.arange(900) * 0.01, sizes)


class TestOrthogonalTargets:
    def test_matches_or_on_orthogonal_targets(self, trace):
        targets = orthogonal_targets((232, 1540, 1576))
        reshaper = TargetDrivenReshaper(targets)
        reshaper.assign_trace(trace)
        # Greedy achieves the OR optimum on orthogonal targets.
        assert reshaper.objective() < 0.05


class TestGeneralTargets:
    def _mixed_targets(self) -> TargetDistribution:
        matrix = np.array(
            [
                [0.8, 0.2, 0.0],  # interface 0 should look mostly small
                [0.2, 0.5, 0.3],  # interface 1 mixed
                [0.0, 0.2, 0.8],  # interface 2 mostly full
            ]
        )
        return TargetDistribution((232, 1540, 1576), matrix)

    def test_greedy_tracks_targets(self, trace):
        # Eq. 1 does not penalize load imbalance, so the one-step greedy
        # may park most packets on one interface; it must still land far
        # below the no-defense objective (every row at distance ~1).
        reshaper = TargetDrivenReshaper(self._mixed_targets())
        reshaper.assign_trace(trace)
        assert reshaper.objective() < 0.6

    def test_greedy_beats_random_assignment(self, trace):
        targets = self._mixed_targets()
        greedy = TargetDrivenReshaper(targets)
        greedy.assign_trace(trace)

        rng = np.random.default_rng(0)
        random_assignment = rng.integers(0, 3, size=len(trace)).astype(np.int16)
        from repro.core.optimization import ReshapingObjective

        random_objective = ReshapingObjective.evaluate(
            trace.with_ifaces(random_assignment), targets
        ).value
        assert greedy.objective() <= random_objective

    def test_achieved_distributions_rows(self, trace):
        reshaper = TargetDrivenReshaper(self._mixed_targets())
        reshaper.assign_trace(trace)
        p = reshaper.achieved_distributions()
        used = p.sum(axis=1) > 0
        assert np.allclose(p[used].sum(axis=1), 1.0)

    def test_reset_clears_state(self, trace):
        reshaper = TargetDrivenReshaper(self._mixed_targets())
        reshaper.assign_trace(trace)
        reshaper.reset()
        assert reshaper.objective() == pytest.approx(
            np.sqrt((reshaper.targets.matrix**2).sum(axis=1)).sum()
        )

    def test_online_equals_batch(self, trace):
        targets = self._mixed_targets()
        online = TargetDrivenReshaper(targets)
        batch = TargetDrivenReshaper(targets)
        one_by_one = [
            online.assign_packet(float(t), int(s), 0)
            for t, s in zip(trace.times[:100], trace.sizes[:100])
        ]
        sub = trace.select(np.arange(len(trace)) < 100)
        assert one_by_one == list(batch.assign_trace(sub))
