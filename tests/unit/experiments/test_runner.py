"""Tests for experiment orchestration: pipeline cache and window cache."""

import pytest

from repro.core.schedulers import OrthogonalReshaper
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import EvaluationScenario


@pytest.fixture(scope="module")
def runner():
    scenario = EvaluationScenario(
        seed=5,
        train_duration=40.0,
        eval_duration=30.0,
        train_sessions=2,
        eval_sessions=1,
    )
    return ExperimentRunner(scenario)


class TestPipelineCache:
    def test_pipeline_reused_per_window(self, runner):
        assert runner.pipeline(5.0) is runner.pipeline(5.0)

    def test_float_jitter_does_not_retrain(self, runner):
        # A sweep computing 0.1 + 0.2 must hit the same pipeline as 0.3
        # instead of silently training a duplicate.
        assert runner.pipeline(0.1 + 0.2) is runner.pipeline(0.3)

    def test_distinct_windows_get_distinct_pipelines(self, runner):
        assert runner.pipeline(5.0) is not runner.pipeline(10.0)


class TestWindowCacheSharing:
    def test_scheme_objects_stable_across_calls(self, runner):
        # Reshaper identity keys the observable-flows cache, so the
        # runner must not rebuild fresh scheme objects per call.
        first = runner.schemes(3)
        second = runner.schemes(3)
        assert all(first[name] is second[name] for name in first)
        assert runner.schemes(2) is not first

    def test_reshaped_flows_cached_across_windows(self, runner):
        reshaper = OrthogonalReshaper.paper_default()
        trace = runner.scenario.evaluation_traces()[runner.app_order()[0]][0]
        first = runner.observable_flows(reshaper, trace)
        second = runner.observable_flows(reshaper, trace)
        assert all(a is b for a, b in zip(first, second))

    def test_original_flows_bypass_cache(self, runner):
        trace = runner.scenario.evaluation_traces()[runner.app_order()[0]][0]
        assert runner.observable_flows(None, trace) == [trace]

    def test_evaluation_populates_feature_cache(self, runner):
        runner.window_cache.clear()
        runner.evaluate_scheme(None, 5.0)
        misses = runner.window_cache.misses
        assert misses > 0
        report = runner.evaluate_scheme(None, 5.0)
        assert runner.window_cache.misses == misses  # second pass all hits
        assert runner.window_cache.hits >= misses
        assert report.confusion.total > 0
