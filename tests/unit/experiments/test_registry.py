"""Tests for the experiment registry and its cell decomposition."""

import pytest

import repro.experiments  # noqa: F401  (importing registers every spec)
from repro.experiments import registry
from repro.experiments.registry import (
    ScenarioParams,
    make_cell,
    parse_number_list,
)
from repro.util.rng import derive_seed

EXPECTED_NAMES = {
    "table1", "table2", "table3", "table4", "table5", "table6",
    "fig1", "fig4", "fig5", "window_sweep", "combined", "tpc", "scalability",
}


class TestRegistryContents:
    def test_every_expected_experiment_is_registered(self):
        assert EXPECTED_NAMES <= set(registry.names())

    def test_get_unknown_name_raises_with_catalog(self):
        with pytest.raises(KeyError, match="registered experiments"):
            registry.get("table99")

    def test_duplicate_registration_rejected(self):
        spec = registry.get("table2")
        with pytest.raises(ValueError, match="already registered"):
            registry.register(spec)

    def test_all_specs_matches_names(self):
        assert tuple(spec.name for spec in registry.all_specs()) == registry.names()


class TestCellDecomposition:
    @pytest.mark.parametrize(
        "name,cells",
        [
            ("table1", 7), ("table2", 5), ("table3", 5), ("table4", 4),
            ("table5", 3), ("table6", 7), ("fig1", 7), ("fig4", 1),
            ("fig5", 1), ("window_sweep", 8), ("combined", 1), ("tpc", 1),
            ("scalability", 1),
        ],
    )
    def test_default_cell_counts(self, name, cells):
        spec = registry.get(name)
        built = spec.build_cells(ScenarioParams(), spec.resolve_options(None))
        assert len(built) == cells

    def test_cells_are_deterministic_and_ordered(self):
        spec = registry.get("window_sweep")
        params = ScenarioParams(seed=11)
        options = spec.resolve_options(None)
        first = spec.build_cells(params, options)
        second = spec.build_cells(params, options)
        assert [cell.name for cell in first] == [cell.name for cell in second]
        assert [cell.seed for cell in first] == [cell.seed for cell in second]

    def test_cell_names_unique_within_experiment(self):
        for spec in registry.all_specs():
            cells = spec.build_cells(ScenarioParams(), spec.resolve_options(None))
            names = [cell.name for cell in cells]
            assert len(names) == len(set(names)), spec.name

    def test_cell_seeds_derive_from_root_seed_and_name(self):
        cell = make_cell("table2", "scheme=OR", {}, root_seed=7)
        assert cell.seed == derive_seed(7, "cell", "table2", "scheme=OR")
        # Distinct cells, distinct streams; distinct roots, distinct streams.
        assert cell.seed != make_cell("table2", "scheme=RA", {}, 7).seed
        assert cell.seed != make_cell("table2", "scheme=OR", {}, 8).seed


class TestOptions:
    def test_overrides_coerced_to_default_types(self):
        spec = registry.get("table2")
        resolved = spec.resolve_options({"window": "60", "interfaces": "5"})
        assert resolved["window"] == 60.0 and isinstance(resolved["window"], float)
        assert resolved["interfaces"] == 5 and isinstance(resolved["interfaces"], int)

    def test_unknown_option_raises(self):
        with pytest.raises(KeyError, match="unknown option"):
            registry.get("table2").resolve_options({"windoe": "5"})

    def test_defaults_not_mutated_by_resolution(self):
        spec = registry.get("table2")
        spec.resolve_options({"window": "60"})
        assert spec.options["window"] == 5.0


class TestParseNumberList:
    def test_floats_by_default_with_spaces(self):
        assert parse_number_list("5, 60") == (5.0, 60.0)

    def test_int_cast(self):
        assert parse_number_list("2,3,5", int) == (2, 3, 5)

    def test_blank_segments_ignored(self):
        assert parse_number_list("5,,10,") == (5.0, 10.0)

    def test_empty_list_raises(self):
        with pytest.raises(ValueError, match="comma-separated"):
            parse_number_list(",")

    def test_non_numeric_raises(self):
        with pytest.raises(ValueError):
            parse_number_list("5;60")


class TestScenarioParams:
    def test_build_matches_fields(self):
        params = ScenarioParams(seed=3, train_duration=30.0, eval_duration=20.0,
                                train_sessions=1, eval_sessions=2)
        scenario = params.build()
        assert scenario.seed == 3
        assert scenario.train_duration == 30.0
        assert scenario.eval_duration == 20.0
        assert scenario.train_sessions == 1
        assert scenario.eval_sessions == 2

    def test_as_dict_round_trip(self):
        params = ScenarioParams(seed=3)
        assert ScenarioParams(**params.as_dict()) == params

    def test_hashable_for_worker_cache_keys(self):
        assert ScenarioParams(seed=3) == ScenarioParams(seed=3)
        assert hash(ScenarioParams(seed=3)) == hash(ScenarioParams(seed=3))


class TestScenarioParamsCorpus:
    """ScenarioParams.corpus: picklable cells that hydrate from disk."""

    @pytest.fixture(scope="class")
    def corpus_path(self, tmp_path_factory):
        from repro.experiments.scenarios import EvaluationScenario

        scenario = EvaluationScenario(
            seed=5, train_duration=30.0, eval_duration=20.0,
            train_sessions=1, eval_sessions=1,
        )
        path = str(tmp_path_factory.mktemp("params") / "params.store")
        scenario.save_corpus(path)
        return path

    def test_for_corpus_reads_the_stored_recipe(self, corpus_path):
        params = ScenarioParams.for_corpus(corpus_path)
        assert params.seed == 5
        assert params.train_duration == 30.0
        assert params.eval_sessions == 1
        assert params.corpus == corpus_path

    def test_for_corpus_params_are_picklable(self, corpus_path):
        import pickle

        params = ScenarioParams.for_corpus(corpus_path)
        assert pickle.loads(pickle.dumps(params)) == params

    def test_build_hydrates_identical_traces(self, corpus_path):
        import numpy as np

        hydrated = ScenarioParams.for_corpus(corpus_path).build()
        generated = ScenarioParams(
            seed=5, train_duration=30.0, eval_duration=20.0,
            train_sessions=1, eval_sessions=1,
        ).build()
        left = hydrated.training_traces()["gaming"][0]
        right = generated.training_traces()["gaming"][0]
        assert np.array_equal(left.times, right.times)

    def test_build_rejects_mismatched_params(self, corpus_path):
        params = ScenarioParams(seed=99, corpus=corpus_path)
        with pytest.raises(ValueError, match="disagree with the corpus"):
            params.build()

    def test_for_corpus_rejects_recipeless_path(self, tmp_path):
        with pytest.raises(ValueError):
            ScenarioParams.for_corpus(str(tmp_path))
