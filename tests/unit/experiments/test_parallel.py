"""Tests for the parallel executor's worker-state sharing and serial path."""

import numpy as np
import pytest

from repro.experiments import parallel
from repro.experiments.registry import ScenarioParams
from repro.experiments.runner import ExperimentRunner
from repro.experiments.table1 import table1_interface_features
from repro.experiments.fig1 import figure1_cdf_series

TINY = ScenarioParams(
    seed=5, train_duration=30.0, eval_duration=20.0, train_sessions=1, eval_sessions=1
)


@pytest.fixture(autouse=True)
def fresh_worker_state():
    parallel.clear_worker_state()
    yield
    parallel.clear_worker_state()


class TestWorkerState:
    def test_scenario_memoized_per_params(self):
        assert parallel.shared_scenario(TINY) is parallel.shared_scenario(TINY)
        other = ScenarioParams(seed=6, train_duration=30.0, eval_duration=20.0,
                               train_sessions=1, eval_sessions=1)
        assert parallel.shared_scenario(TINY) is not parallel.shared_scenario(other)

    def test_runner_memoized_and_wraps_shared_scenario(self):
        runner = parallel.shared_runner(TINY)
        assert isinstance(runner, ExperimentRunner)
        assert runner is parallel.shared_runner(TINY)
        assert runner.scenario is parallel.shared_scenario(TINY)

    def test_worker_cached_builds_once(self):
        calls = []
        build = lambda: calls.append(1) or "value"  # noqa: E731
        assert parallel.worker_cached("key", build) == "value"
        assert parallel.worker_cached("key", build) == "value"
        assert len(calls) == 1

    def test_clear_worker_state_drops_memos(self):
        scenario = parallel.shared_scenario(TINY)
        parallel.clear_worker_state()
        assert parallel.shared_scenario(TINY) is not scenario

    def test_default_jobs_positive(self):
        assert parallel.default_jobs() >= 1


class TestSerialPath:
    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="registered experiments"):
            parallel.run_experiment("nope", TINY)

    def test_serial_table1_matches_legacy_entry_point(self):
        via_registry = parallel.run_experiment("table1", TINY)
        legacy = table1_interface_features(TINY.build())
        # repr-level equality is bit-exact for floats and NaN-tolerant
        # (empty interfaces are NaN, and NaN != NaN under ==).
        assert repr(via_registry) == repr(legacy)

    def test_serial_fig1_matches_legacy_entry_point(self):
        via_registry = parallel.run_experiment(
            "fig1", TINY, options={"duration": 10.0}
        )
        legacy = figure1_cdf_series(duration=10.0, seed=TINY.seed)
        assert set(via_registry) == set(legacy)
        for app in legacy:
            for ours, reference in zip(via_registry[app], legacy[app]):
                np.testing.assert_array_equal(ours, reference)

    def test_option_overrides_reach_cells(self):
        rows = parallel.run_experiment("table1", TINY, options={"interfaces": 2})
        assert all(set(row.interface_mean_sizes) == {0, 1} for row in rows)

    def test_result_artifact_carries_provenance(self):
        result = parallel.run_experiment_result(
            "fig1", TINY, options={"duration": 10.0}
        )
        assert result.experiment == "fig1"
        assert result.params["seed"] == TINY.seed
        assert result.params["duration"] == 10.0
        assert len(result.rows) == 7
