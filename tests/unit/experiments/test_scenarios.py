"""Tests for scenario construction and caching."""

import numpy as np
import pytest

from repro.core.base import Reshaper
from repro.experiments.scenarios import SCHEME_NAMES, EvaluationScenario, build_schemes
from repro.traffic.apps import AppType


@pytest.fixture(scope="module")
def scenario():
    return EvaluationScenario(
        seed=5, train_duration=30.0, eval_duration=30.0, train_sessions=2, eval_sessions=2
    )


class TestBuildSchemes:
    def test_scheme_order_matches_tables(self):
        assert SCHEME_NAMES == ("Original", "FH", "RA", "RR", "OR")
        assert list(build_schemes()) == list(SCHEME_NAMES)

    def test_original_is_none_rest_are_reshapers(self):
        schemes = build_schemes()
        assert schemes["Original"] is None
        for name in ("FH", "RA", "RR", "OR"):
            assert isinstance(schemes[name], Reshaper)

    def test_interface_count_propagates(self):
        schemes = build_schemes(interfaces=5)
        assert schemes["RA"].interfaces == 5
        assert schemes["OR"].interfaces == 5


class TestScenario:
    def test_training_traces_cached(self, scenario):
        first = scenario.training_traces()
        second = scenario.training_traces()
        assert first["chatting"][0] is second["chatting"][0]

    def test_training_covers_all_apps(self, scenario):
        train = scenario.training_traces()
        assert set(train) == {app.value for app in AppType}
        assert all(len(traces) == 2 for traces in train.values())

    def test_evaluation_sessions_count(self, scenario):
        evaluation = scenario.evaluation_traces()
        assert all(len(traces) == 2 for traces in evaluation.values())

    def test_evaluation_disjoint_from_training(self, scenario):
        train = scenario.training_traces()["video"][0]
        held_out = scenario.evaluation_trace(AppType.VIDEO, 0)
        assert not np.array_equal(train.times, held_out.times)

    def test_same_seed_reproduces(self):
        a = EvaluationScenario(seed=9, train_duration=20.0, train_sessions=1,
                               eval_duration=20.0, eval_sessions=1)
        b = EvaluationScenario(seed=9, train_duration=20.0, train_sessions=1,
                               eval_duration=20.0, eval_sessions=1)
        ta = a.training_traces()["gaming"][0]
        tb = b.training_traces()["gaming"][0]
        assert np.array_equal(ta.times, tb.times)


class TestAccessorHygiene:
    """Returned mappings are defensive copies with aligned key types."""

    def test_mutating_evaluation_lists_does_not_corrupt_corpus(self, scenario):
        first = scenario.evaluation_traces()
        first[AppType.VIDEO].clear()
        first[AppType.VIDEO].append("garbage")
        again = scenario.evaluation_traces()
        assert len(again[AppType.VIDEO]) == 2
        assert all(not isinstance(t, str) for t in again[AppType.VIDEO])

    def test_mutating_training_lists_does_not_corrupt_corpus(self, scenario):
        scenario.training_traces()["video"].clear()
        assert len(scenario.training_traces()["video"]) == 2
        scenario.training_by_app()[AppType.VIDEO].clear()
        assert len(scenario.training_by_app()[AppType.VIDEO]) == 2

    def test_trace_objects_still_shared_for_identity_caching(self, scenario):
        # Downstream caches (WindowCache) key flows by id(); copies are
        # of the *containers* only, never of the traces.
        first = scenario.evaluation_by_app()[AppType.VIDEO][0]
        second = scenario.evaluation_by_app()[AppType.VIDEO][0]
        assert first is second

    def test_key_types_aligned_across_splits(self, scenario):
        assert all(isinstance(k, AppType) for k in scenario.training_by_app())
        assert all(isinstance(k, AppType) for k in scenario.evaluation_by_app())
        assert all(isinstance(k, str) for k in scenario.training_traces())
        assert all(isinstance(k, str) for k in scenario.evaluation_by_label())
        assert set(scenario.evaluation_by_label()) == set(scenario.training_traces())

    def test_evaluation_traces_is_by_app_alias(self, scenario):
        alias = scenario.evaluation_traces()
        direct = scenario.evaluation_by_app()
        assert set(alias) == set(direct)
        assert all(
            a is b
            for app in alias
            for a, b in zip(alias[app], direct[app])
        )


class TestCorpusRoundTrip:
    """save_corpus -> from_store hydration is bit-identical to generation."""

    @pytest.fixture(scope="class")
    def stored(self, tmp_path_factory, scenario):
        path = str(tmp_path_factory.mktemp("corpus") / "scenario.store")
        store = scenario.save_corpus(path)
        return path, store

    def test_recipe_round_trips(self, scenario, stored):
        _, store = stored
        assert store.scenario == scenario.corpus_recipe()

    def test_hydrated_scenario_matches_generated(self, scenario, stored):
        path, _ = stored
        hydrated = EvaluationScenario.from_store(path)
        assert hydrated.seed == scenario.seed
        assert hydrated.apps == scenario.apps
        for split in ("training_by_app", "evaluation_by_app"):
            generated = getattr(scenario, split)()
            loaded = getattr(hydrated, split)()
            assert list(loaded) == list(generated)
            for app in generated:
                for a, b in zip(generated[app], loaded[app]):
                    assert a.times.tobytes() == b.times.tobytes()
                    assert a.sizes.tobytes() == b.sizes.tobytes()
                    assert a.label == b.label

    def test_hydration_is_zero_copy_and_lazy(self, stored):
        path, _ = stored
        hydrated = EvaluationScenario.from_store(path)
        trace = hydrated.training_by_app()[AppType.VIDEO][0]
        assert isinstance(np.asarray(trace.times).base, np.memmap) or isinstance(
            trace.times, np.memmap
        )

    def test_from_store_rejects_recipeless_store(self, tmp_path, scenario):
        from repro.storage import write_traces

        trace = scenario.training_by_app()[AppType.VIDEO][0]
        path = str(tmp_path / "raw.store")
        write_traces(path, [trace])
        with pytest.raises(ValueError, match="no scenario recipe"):
            EvaluationScenario.from_store(path)

    def test_from_store_rejects_incomplete_corpus(self, tmp_path, scenario):
        from repro.storage import TraceStore

        path = str(tmp_path / "partial.store")
        with TraceStore.create(path, scenario=scenario.corpus_recipe()) as writer:
            writer.add(
                scenario.training_by_app()[AppType.VIDEO][0], role="train"
            )
        with pytest.raises(ValueError, match="does not match its own recipe"):
            EvaluationScenario.from_store(path)
