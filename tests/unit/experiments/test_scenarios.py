"""Tests for scenario construction and caching."""

import numpy as np
import pytest

from repro.core.base import Reshaper
from repro.experiments.scenarios import SCHEME_NAMES, EvaluationScenario, build_schemes
from repro.traffic.apps import AppType


@pytest.fixture(scope="module")
def scenario():
    return EvaluationScenario(
        seed=5, train_duration=30.0, eval_duration=30.0, train_sessions=2, eval_sessions=2
    )


class TestBuildSchemes:
    def test_scheme_order_matches_tables(self):
        assert SCHEME_NAMES == ("Original", "FH", "RA", "RR", "OR")
        assert list(build_schemes()) == list(SCHEME_NAMES)

    def test_original_is_none_rest_are_reshapers(self):
        schemes = build_schemes()
        assert schemes["Original"] is None
        for name in ("FH", "RA", "RR", "OR"):
            assert isinstance(schemes[name], Reshaper)

    def test_interface_count_propagates(self):
        schemes = build_schemes(interfaces=5)
        assert schemes["RA"].interfaces == 5
        assert schemes["OR"].interfaces == 5


class TestScenario:
    def test_training_traces_cached(self, scenario):
        first = scenario.training_traces()
        second = scenario.training_traces()
        assert first["chatting"][0] is second["chatting"][0]

    def test_training_covers_all_apps(self, scenario):
        train = scenario.training_traces()
        assert set(train) == {app.value for app in AppType}
        assert all(len(traces) == 2 for traces in train.values())

    def test_evaluation_sessions_count(self, scenario):
        evaluation = scenario.evaluation_traces()
        assert all(len(traces) == 2 for traces in evaluation.values())

    def test_evaluation_disjoint_from_training(self, scenario):
        train = scenario.training_traces()["video"][0]
        held_out = scenario.evaluation_trace(AppType.VIDEO, 0)
        assert not np.array_equal(train.times, held_out.times)

    def test_same_seed_reproduces(self):
        a = EvaluationScenario(seed=9, train_duration=20.0, train_sessions=1,
                               eval_duration=20.0, eval_sessions=1)
        b = EvaluationScenario(seed=9, train_duration=20.0, train_sessions=1,
                               eval_duration=20.0, eval_sessions=1)
        ta = a.training_traces()["gaming"][0]
        tb = b.training_traces()["gaming"][0]
        assert np.array_equal(ta.times, tb.times)
