"""Tests for eavesdropping-window slicing."""

import numpy as np
import pytest

from repro.analysis.windows import sliding_windows, window_traces
from repro.traffic.trace import Trace


class TestSlidingWindows:
    def test_basic_slicing(self):
        trace = Trace.from_arrays(np.arange(10) * 1.0, np.full(10, 100))
        windows = sliding_windows(trace, window=5.0, min_packets=2)
        assert len(windows) == 2
        assert all(len(w) == 5 for w in windows)

    def test_windows_rebased_to_zero(self):
        trace = Trace.from_arrays([10.0, 11.0, 12.0], [1, 1, 1])
        [window] = sliding_windows(trace, window=5.0, min_packets=2)
        assert window.times[0] == pytest.approx(0.0)

    def test_sparse_windows_dropped(self):
        trace = Trace.from_arrays([0.0, 0.1, 7.0], [1, 1, 1])
        windows = sliding_windows(trace, window=5.0, min_packets=2)
        assert len(windows) == 1  # the lone packet at t=7 is unclassifiable

    def test_min_packets_threshold(self):
        trace = Trace.from_arrays([0.0, 1.0, 2.0], [1, 1, 1])
        assert len(sliding_windows(trace, 5.0, min_packets=4)) == 0

    def test_empty_trace(self):
        assert sliding_windows(Trace.empty(), 5.0) == []

    def test_label_propagates(self):
        trace = Trace.from_arrays([0.0, 1.0], [1, 1], label="bt")
        [window] = sliding_windows(trace, 5.0)
        assert window.label == "bt"

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            sliding_windows(Trace.empty(), 0.0)

    def test_packet_conservation(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 100, 500))
        trace = Trace.from_arrays(times, np.full(500, 10))
        windows = sliding_windows(trace, 5.0, min_packets=1)
        assert sum(len(w) for w in windows) == 500


class TestWindowTraces:
    def test_concatenates_across_flows(self):
        a = Trace.from_arrays(np.arange(10) * 1.0, np.full(10, 1))
        b = Trace.from_arrays(np.arange(6) * 1.0, np.full(6, 1))
        windows = window_traces([a, b], window=5.0, min_packets=2)
        # a yields two full windows; b yields one (its t=5 straggler is
        # below min_packets).
        assert len(windows) == 2 + 1
