"""Tests for eavesdropping-window slicing."""

import numpy as np
import pytest

from repro.analysis.windows import (
    sliding_windows,
    window_edges,
    window_key,
    window_traces,
)
from repro.traffic.trace import Trace


class TestSlidingWindows:
    def test_basic_slicing(self):
        trace = Trace.from_arrays(np.arange(10) * 1.0, np.full(10, 100))
        windows = sliding_windows(trace, window=5.0, min_packets=2)
        assert len(windows) == 2
        assert all(len(w) == 5 for w in windows)

    def test_windows_rebased_to_zero(self):
        trace = Trace.from_arrays([10.0, 11.0, 12.0], [1, 1, 1])
        [window] = sliding_windows(trace, window=5.0, min_packets=2)
        assert window.times[0] == pytest.approx(0.0)

    def test_sparse_windows_dropped(self):
        trace = Trace.from_arrays([0.0, 0.1, 7.0], [1, 1, 1])
        windows = sliding_windows(trace, window=5.0, min_packets=2)
        assert len(windows) == 1  # the lone packet at t=7 is unclassifiable

    def test_min_packets_threshold(self):
        trace = Trace.from_arrays([0.0, 1.0, 2.0], [1, 1, 1])
        assert len(sliding_windows(trace, 5.0, min_packets=4)) == 0

    def test_empty_trace(self):
        assert sliding_windows(Trace.empty(), 5.0) == []

    def test_label_propagates(self):
        trace = Trace.from_arrays([0.0, 1.0], [1, 1], label="bt")
        [window] = sliding_windows(trace, 5.0)
        assert window.label == "bt"

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            sliding_windows(Trace.empty(), 0.0)

    def test_packet_conservation(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 100, 500))
        trace = Trace.from_arrays(times, np.full(500, 10))
        windows = sliding_windows(trace, 5.0, min_packets=1)
        assert sum(len(w) for w in windows) == 500

    def test_non_time_columns_are_views(self):
        # The slicer no longer copies the five non-time columns per
        # window; slices alias the parent flow's storage.
        trace = Trace.from_arrays(np.arange(10) * 1.0, np.full(10, 100))
        [first, _] = sliding_windows(trace, 5.0, min_packets=2)
        assert np.shares_memory(first.sizes, trace.sizes)
        assert np.shares_memory(first.directions, trace.directions)

    def test_last_packet_on_exact_multiple_is_windowed(self):
        # Span exactly 2 W: the packet at t=10 belongs to a third window.
        trace = Trace.from_arrays([0.0, 1.0, 5.0, 6.0, 10.0], [1] * 5)
        windows = sliding_windows(trace, 5.0, min_packets=1)
        assert len(windows) == 3
        assert len(windows[-1]) == 1


class TestWindowEdges:
    def test_minimal_edge_count(self):
        # 0..9.x seconds at W=5 needs exactly 2 windows (3 edges) — the
        # old implementation allocated one always-empty trailing window.
        edges = window_edges(np.arange(10) * 1.0, 5.0)
        assert len(edges) == 3

    def test_exact_multiple_span(self):
        edges = window_edges(np.array([0.0, 10.0]), 5.0)
        assert len(edges) == 4  # packet at 10.0 needs the [10, 15) window

    def test_zero_span(self):
        edges = window_edges(np.array([3.0, 3.0]), 5.0)
        assert len(edges) == 2
        assert edges[0] == pytest.approx(3.0)

    def test_empty_times_rejected(self):
        with pytest.raises(ValueError, match="at least one timestamp"):
            window_edges(np.array([]), 5.0)

    def test_large_exact_multiple_span_still_covered(self):
        # Regression: spans of ~2^13 W and beyond exceed what a fixed
        # 1e-12 epsilon on the edge-count division could represent; the
        # final packet at an exact multiple of W must stay inside the
        # last window regardless of magnitude.
        for multiple in (16384, 2**20):
            times = np.array([0.0, 0.5, multiple * 5.0 - 0.5, multiple * 5.0])
            edges = window_edges(times, 5.0)
            assert edges[-1] > times[-1]
            trace = Trace.from_arrays(times, [10, 20, 30, 40])
            windows = sliding_windows(trace, 5.0, min_packets=1)
            assert sum(len(w) for w in windows) == 4


class TestWindowKey:
    def test_float_jitter_normalized(self):
        assert window_key(0.1 + 0.2) == window_key(0.3)

    def test_distinct_windows_stay_distinct(self):
        assert window_key(5.0) != window_key(60.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            window_key(0.0)


class TestWindowTraces:
    def test_concatenates_across_flows(self):
        a = Trace.from_arrays(np.arange(10) * 1.0, np.full(10, 1))
        b = Trace.from_arrays(np.arange(6) * 1.0, np.full(6, 1))
        windows = window_traces([a, b], window=5.0, min_packets=2)
        # a yields two full windows; b yields one (its t=5 straggler is
        # below min_packets).
        assert len(windows) == 2 + 1
