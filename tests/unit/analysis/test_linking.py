"""Tests for RSSI linking (Sec. V-A)."""

import numpy as np
import pytest

from repro.analysis.linking import RssiLinker, linking_accuracy
from repro.traffic.trace import Trace


def _flow(rssi_mean: float, n: int = 50, seed: int = 0) -> Trace:
    rng = np.random.default_rng(seed)
    return Trace.from_arrays(
        times=np.arange(n) * 0.1,
        sizes=np.full(n, 100),
        directions=np.ones(n, dtype=np.int8),
        rssi=rng.normal(rssi_mean, 0.5, n),
    )


class TestSignature:
    def test_mean_uplink_rssi(self):
        linker = RssiLinker()
        assert linker.flow_signature(_flow(-50.0)) == pytest.approx(-50.0, abs=0.5)

    def test_nan_without_rssi(self):
        trace = Trace.from_arrays([0.0], [10], directions=[1])
        assert np.isnan(RssiLinker().flow_signature(trace))

    def test_downlink_frames_ignored(self):
        trace = Trace.from_arrays(
            [0.0, 1.0], [10, 10], directions=[0, 0], rssi=[-40.0, -40.0]
        )
        assert np.isnan(RssiLinker().flow_signature(trace))


class TestLinking:
    def test_groups_same_transmitter(self):
        flows = [_flow(-50.0, seed=1), _flow(-50.3, seed=2), _flow(-70.0, seed=3)]
        groups = RssiLinker(threshold_db=3.0).link(flows)
        assert sorted(map(sorted, groups)) == [[0, 1], [2]]

    def test_separates_distant_transmitters(self):
        flows = [_flow(-45.0), _flow(-60.0), _flow(-75.0)]
        groups = RssiLinker(threshold_db=3.0).link(flows)
        assert len(groups) == 3

    def test_rssi_free_flows_stay_singletons(self):
        silent = Trace.from_arrays([0.0], [10], directions=[1])
        groups = RssiLinker().link([silent, silent])
        assert len(groups) == 2


class TestLinkingAccuracy:
    def test_perfect_grouping(self):
        groups = [[0, 1], [2]]
        assert linking_accuracy(groups, [7, 7, 8]) == 1.0

    def test_all_split_when_same_owner(self):
        groups = [[0], [1]]
        assert linking_accuracy(groups, [7, 7]) == 0.0

    def test_partial_credit(self):
        groups = [[0, 1, 2]]
        # Pairs: (0,1) same-owner correct, (0,2) and (1,2) wrong.
        assert linking_accuracy(groups, [7, 7, 8]) == pytest.approx(1 / 3)

    def test_trivial_cases(self):
        assert linking_accuracy([], []) == 1.0
        assert linking_accuracy([[0]], [5]) == 1.0
