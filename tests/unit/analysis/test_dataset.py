"""Tests for labeled datasets and splitting."""

import numpy as np
import pytest

from repro.analysis.dataset import Dataset, train_test_split
from repro.analysis.features import WindowFeatures


def _features(label: str, count: int) -> list[WindowFeatures]:
    rng = np.random.default_rng(hash(label) % (2**32))
    return [WindowFeatures(rng.normal(size=12), label) for _ in range(count)]


class TestDataset:
    def test_from_features(self):
        dataset = Dataset.from_features(_features("a", 3) + _features("b", 2))
        assert len(dataset) == 5
        assert dataset.classes == ("a", "b")

    def test_label_indices_stable(self):
        dataset = Dataset.from_features(_features("b", 1) + _features("a", 1))
        indices = dataset.label_indices()
        assert list(indices) == [1, 0]  # classes sorted alphabetically

    def test_explicit_class_list(self):
        dataset = Dataset.from_features(_features("a", 2), classes=("a", "b", "c"))
        assert dataset.classes == ("a", "b", "c")

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            Dataset.from_features(_features("z", 1), classes=("a",))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Dataset.from_features([])

    def test_subset_preserves_classes(self):
        dataset = Dataset.from_features(_features("a", 3) + _features("b", 3))
        subset = dataset.subset(np.array([True, False, True, False, True, False]))
        assert len(subset) == 3
        assert subset.classes == dataset.classes

    def test_class_counts(self):
        dataset = Dataset.from_features(_features("a", 3) + _features("b", 1))
        assert dataset.class_counts() == {"a": 3, "b": 1}

    def test_from_matrix(self):
        matrix = np.zeros((3, 12))
        dataset = Dataset.from_matrix(matrix, ["b", "a", "b"])
        assert dataset.classes == ("a", "b")
        assert list(dataset.label_indices()) == [1, 0, 1]


class TestUnlabeledRows:
    def test_label_none_accepted_without_sentinel(self):
        features = [WindowFeatures(np.zeros(12), None) for _ in range(2)]
        dataset = Dataset.from_features(features, classes=("a", "b"))
        assert dataset.y == [None, None]
        assert dataset.classes == ("a", "b")

    def test_none_excluded_from_inferred_classes(self):
        features = _features("a", 1) + [WindowFeatures(np.zeros(12), None)]
        dataset = Dataset.from_features(features)
        assert dataset.classes == ("a",)

    def test_label_indices_rejects_unlabeled(self):
        dataset = Dataset.from_matrix(np.zeros((1, 12)), [None], classes=("a",))
        with pytest.raises(ValueError, match="unlabeled"):
            dataset.label_indices()

    def test_class_counts_ignores_unlabeled(self):
        dataset = Dataset.from_matrix(np.zeros((3, 12)), ["a", None, "a"], classes=("a",))
        assert dataset.class_counts() == {"a": 2}


class TestTrainTestSplit:
    def test_stratified(self):
        dataset = Dataset.from_features(_features("a", 20) + _features("b", 10))
        train, test = train_test_split(dataset, test_fraction=0.3, seed=0)
        assert len(train) + len(test) == 30
        assert test.class_counts()["a"] == 6
        assert test.class_counts()["b"] == 3

    def test_every_class_keeps_training_rows(self):
        dataset = Dataset.from_features(_features("a", 2) + _features("b", 2))
        train, test = train_test_split(dataset, test_fraction=0.5, seed=0)
        assert train.class_counts()["a"] >= 1
        assert train.class_counts()["b"] >= 1

    def test_deterministic(self):
        dataset = Dataset.from_features(_features("a", 10) + _features("b", 10))
        split_a = train_test_split(dataset, seed=3)[1].y
        split_b = train_test_split(dataset, seed=3)[1].y
        assert split_a == split_b

    def test_rejects_bad_fraction(self):
        dataset = Dataset.from_features(_features("a", 4))
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=1.5)
