"""Tests for the flow-aggregation counter-attack."""

import numpy as np
import pytest

from repro.analysis.aggregation import AggregationAttack
from repro.analysis.attack import AttackPipeline
from repro.analysis.linking import RssiLinker
from repro.core.engine import ReshapingEngine
from repro.core.schedulers import OrthogonalReshaper
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator


@pytest.fixture(scope="module")
def pipeline():
    generator = TrafficGenerator(seed=61)
    training = {
        app.value: [generator.generate(app, 90.0, session=s) for s in range(2)]
        for app in AppType
    }
    pipe = AttackPipeline(window=5.0, seed=61)
    pipe.train(training)
    return pipe


@pytest.fixture(scope="module")
def or_flows():
    generator = TrafficGenerator(seed=62)
    engine = ReshapingEngine(OrthogonalReshaper.paper_default())
    flows = {}
    for app in (AppType.BITTORRENT, AppType.VIDEO, AppType.BROWSING):
        trace = generator.generate(app, 90.0, session=9)
        flows[app.value] = engine.apply(trace).observable_flows
    return flows


class TestOracleAggregation:
    def test_merging_recovers_accuracy(self, pipeline, or_flows):
        # The oracle adversary (perfect linking) merges each app's
        # interfaces back together — recovering the original traffic and
        # thus the undefended accuracy.
        attack = AggregationAttack(pipeline, linker=None)
        outcome = attack.evaluate(or_flows)
        assert outcome.merged_report.mean_accuracy > outcome.split_report.mean_accuracy
        assert outcome.accuracy_recovered > 20.0

    def test_merged_flow_is_the_original_traffic(self, pipeline):
        generator = TrafficGenerator(seed=63)
        trace = generator.generate(AppType.BITTORRENT, 60.0)
        flows = ReshapingEngine(OrthogonalReshaper.paper_default()).apply(trace)
        attack = AggregationAttack(pipeline, linker=None)
        [merged] = attack.merge_flows(flows.observable_flows)
        assert len(merged) == len(trace)
        assert merged.total_bytes == trace.total_bytes
        assert np.allclose(np.sort(merged.times), trace.times)

    def test_groups_counted(self, pipeline, or_flows):
        attack = AggregationAttack(pipeline, linker=None)
        outcome = attack.evaluate(or_flows)
        assert outcome.groups_formed == len(or_flows)


class TestLinkerAggregation:
    def test_rssi_linker_merging(self, pipeline):
        # Flows with matching RSSI merge; others stay split.
        linker = RssiLinker(threshold_db=3.0)
        attack = AggregationAttack(pipeline, linker=linker)
        generator = TrafficGenerator(seed=64)
        trace = generator.generate(AppType.BITTORRENT, 60.0)
        flows = ReshapingEngine(OrthogonalReshaper.paper_default()).apply(trace)
        # Give all flows the same synthetic uplink RSSI.
        tagged = []
        for flow in flows.observable_flows:
            rssi = np.where(flow.directions == 1, -50.0, np.nan).astype(np.float32)
            flow = flow.with_label("bittorrent")
            flow.rssi = rssi
            tagged.append(flow)
        merged = attack.merge_flows(tagged)
        linked_sizes = sorted(len(m) for m in merged)
        # Flows with uplink RSSI merge into one group; any downlink-only
        # flow (NaN signature) stays a singleton.
        assert linked_sizes[-1] > max(len(f) for f in tagged) / 2

    def test_requires_trained_pipeline(self):
        with pytest.raises(ValueError):
            AggregationAttack(AttackPipeline(window=5.0), linker=None)

    def test_empty_flows(self, pipeline):
        attack = AggregationAttack(pipeline, linker=None)
        assert attack.merge_flows([]) == []
