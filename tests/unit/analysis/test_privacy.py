"""Tests for privacy entropy metrics."""

import pytest

from repro.analysis.privacy import (
    attribution_entropy_bits,
    effective_anonymity_set,
    wlan_privacy_entropy_bits,
)


class TestAttributionEntropy:
    def test_uniform_recovers_log2_n(self):
        assert attribution_entropy_bits([0.25] * 4) == pytest.approx(2.0)

    def test_point_mass_is_zero(self):
        assert attribution_entropy_bits([1.0, 0.0, 0.0]) == 0.0

    def test_skewed_between_zero_and_log2n(self):
        h = attribution_entropy_bits([0.7, 0.2, 0.1])
        assert 0.0 < h < 1.585

    def test_rejects_non_distribution(self):
        with pytest.raises(ValueError):
            attribution_entropy_bits([0.5, 0.2])


class TestAnonymitySet:
    def test_uniform_perplexity(self):
        assert effective_anonymity_set([0.2] * 5) == pytest.approx(5.0)

    def test_certain_attribution(self):
        assert effective_anonymity_set([1.0]) == pytest.approx(1.0)


class TestWlanEntropy:
    def test_matches_paper_formula(self):
        # Sec. III-C-3: H = log2 N.
        assert wlan_privacy_entropy_bits(8, 1) == pytest.approx(3.0)

    def test_interfaces_add_log2_i_bits(self):
        base = wlan_privacy_entropy_bits(10, 1)
        reshaped = wlan_privacy_entropy_bits(10, 4)
        assert reshaped - base == pytest.approx(2.0)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            wlan_privacy_entropy_bits(0, 3)
