"""Tests for the end-to-end attack pipeline."""

import pytest

from repro.analysis.attack import AttackPipeline, DefenseEvaluation
from repro.core.engine import ReshapingEngine
from repro.core.schedulers import OrthogonalReshaper
from repro.defenses.padding import PacketPadding
from repro.traffic.apps import AppType


@pytest.fixture(scope="module")
def trained(tiny_corpus_module):
    pipeline = AttackPipeline(window=5.0, seed=0)
    pipeline.train(tiny_corpus_module)
    return pipeline


@pytest.fixture(scope="module")
def tiny_corpus_module():
    from repro.traffic.generator import TrafficGenerator

    generator = TrafficGenerator(seed=1234)
    return {
        app.value: [generator.generate(app, duration=60.0, session=s) for s in range(2)]
        for app in AppType
    }


class TestTraining:
    def test_trains_and_reports_validation(self, trained):
        assert trained.is_trained
        assert 0.5 < trained.validation_accuracy <= 1.0
        assert trained.classifier_name in ("svm", "nn")

    def test_classes_are_the_seven_apps(self, trained):
        assert set(trained.classes) == {app.value for app in AppType}

    def test_untrained_pipeline_refuses_to_classify(self):
        pipeline = AttackPipeline(window=5.0)
        with pytest.raises(RuntimeError):
            pipeline.classify_windows([])
        assert pipeline.classifier_name == "untrained"

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            AttackPipeline(window=5.0).train({})

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AttackPipeline(window=0.0)


class TestEvaluation:
    def test_undefended_accuracy_is_high(self, trained, tiny_corpus_module):
        from repro.traffic.generator import TrafficGenerator

        generator = TrafficGenerator(seed=777)
        held_out = {
            app.value: [generator.generate(app, duration=60.0, session=9)]
            for app in AppType
        }
        report = trained.evaluate_traces(held_out)
        assert report.mean_accuracy > 60.0

    def test_or_reduces_identifiability_of_bt(self, trained):
        from repro.traffic.generator import TrafficGenerator

        generator = TrafficGenerator(seed=778)
        bt = generator.generate(AppType.BITTORRENT, 60.0, session=5)
        engine = ReshapingEngine(OrthogonalReshaper.paper_default())
        flows = engine.apply(bt).observable_flows
        report = trained.evaluate_flows({"bittorrent": flows})
        assert report.accuracy_by_class["bittorrent"] < 60.0

    def test_classify_windows_empty(self, trained):
        assert trained.classify_windows([]) == []

    def test_classify_windows_agrees_with_matrix_path(self, trained):
        from repro.analysis.batch import flow_feature_matrix
        from repro.analysis.windows import sliding_windows
        from repro.traffic.generator import TrafficGenerator

        generator = TrafficGenerator(seed=782)
        flow = generator.generate(AppType.VIDEO, 60.0, session=8)
        windows = sliding_windows(flow, trained.window, trained.min_packets)
        per_window = trained.classify_windows(windows)
        batched = trained.classify_matrix(
            flow_feature_matrix(flow, trained.window, trained.min_packets)
        )
        assert per_window == batched

    def test_classify_matrix_empty(self, trained):
        import numpy as np

        assert trained.classify_matrix(np.empty((0, 12))) == []

    def test_classify_matrix_untrained(self):
        import numpy as np

        with pytest.raises(RuntimeError):
            AttackPipeline(window=5.0).classify_matrix(np.zeros((1, 12)))

    def test_defense_evaluation_container(self, trained):
        from repro.traffic.generator import TrafficGenerator

        generator = TrafficGenerator(seed=779)
        evaluation = DefenseEvaluation()
        trace = generator.generate(AppType.CHATTING, 60.0, session=3)
        evaluation.add("chatting", PacketPadding().apply(trace))
        report = trained.evaluate_defense(evaluation)
        assert report.confusion.total > 0

    def test_report_mean_fp(self, trained):
        from repro.traffic.generator import TrafficGenerator

        generator = TrafficGenerator(seed=780)
        held_out = {
            app.value: [generator.generate(app, duration=60.0, session=4)]
            for app in AppType
        }
        report = trained.evaluate_traces(held_out)
        assert 0.0 <= report.mean_false_positive <= 100.0


class TestFeatureMasking:
    def test_timing_only_attacker(self, tiny_corpus_module):
        pipeline = AttackPipeline(
            window=5.0, seed=0, feature_indices=(0, 5, 6, 11)
        )
        pipeline.train(tiny_corpus_module)
        assert pipeline.is_trained
        # A timing-only attacker still beats random guessing (1/7).
        from repro.traffic.generator import TrafficGenerator

        generator = TrafficGenerator(seed=781)
        held_out = {
            app.value: [generator.generate(app, duration=60.0, session=6)]
            for app in AppType
        }
        report = pipeline.evaluate_traces(held_out)
        assert report.mean_accuracy > 100.0 / 7.0
