"""The fused featurization kernel and its WindowCache plumbing.

Property-level parity against the legacy apply→featurize oracle lives
in ``tests/property/test_fused_properties.py``; here we pin down the
kernel's unit-level contracts — telemetry (counts, the O(one flow)
``batch.bytes_materialized`` gauge), empty-flow handling — and the
cache semantics the runner depends on: None plans are cached (fallback
schemes don't re-attempt fusion per window), captured subprofiles come
back on every request, and the preallocating ``flows_feature_matrix``
still equals the concatenate-of-parts construction.
"""

import numpy as np
import pytest

from repro import obs
from repro.analysis.batch import (
    WindowCache,
    flow_feature_matrix,
    flows_feature_matrix,
    fused_feature_matrices,
    fused_flow_matrices,
)
from repro.schemes import build_stack
from repro.traffic.trace import Trace


def make_trace(n=600, seed=0, label="browsing"):
    rng = np.random.default_rng(seed)
    return Trace.from_arrays(
        np.sort(rng.uniform(0.0, 40.0, n)),
        rng.integers(1, 1577, n),
        directions=rng.choice([0, 1], n),
        label=label,
    )


class TestFusedKernel:
    def test_matches_materialized_flows(self):
        trace = make_trace()
        scheme = build_stack("padding+or", seed=3)
        plan = scheme.fused_plan(trace)
        fused = fused_flow_matrices(trace, plan, window=5.0)
        flows = scheme.apply(trace).observable_flows
        assert len(fused) == len(flows)
        for matrix, flow in zip(fused, flows):
            np.testing.assert_array_equal(
                matrix, flow_feature_matrix(flow, 5.0, 2)
            )

    def test_empty_flows_yield_empty_matrices(self):
        trace = make_trace(n=0)
        plan = build_stack("original", seed=3).fused_plan(trace)
        matrices = fused_flow_matrices(trace, plan, window=5.0)
        assert len(matrices) == 1
        assert matrices[0].shape == (0, 12)

    def test_counts_flows_and_windows(self):
        trace = make_trace()
        plan = build_stack("or", seed=3).fused_plan(trace)
        matrices, sub = obs.captured(
            lambda: fused_flow_matrices(trace, plan, window=5.0)
        )
        counters = sub.metrics.counters
        assert counters["batch.fused_flows"] == plan.n_flows
        assert counters["batch.fused_windows"] == sum(len(m) for m in matrices)

    def test_bytes_materialized_is_bounded_by_one_flow(self):
        """The gauge tracks a single flow's working set, not the trace's."""
        trace = make_trace(n=2000)
        plan = build_stack("rr", seed=3).fused_plan(trace)
        _, sub = obs.captured(lambda: fused_flow_matrices(trace, plan, window=5.0))
        high_water = sub.metrics.gauges["batch.bytes_materialized"]
        # A flow's gather holds its times/sizes/directions plus the two
        # per-direction float64 size/time views: comfortably under
        # 6 × 8 bytes per packet of the *largest flow*.
        counts = np.diff(plan.flow_bounds)
        assert high_water <= int(counts.max()) * 6 * 8
        # And far below materializing the whole trace's flows at once.
        assert high_water < len(trace) * 3 * 8

    def test_accepts_raw_columns(self):
        trace = make_trace(n=200)
        plan = build_stack("modulo", seed=3).fused_plan(trace)
        via_trace = fused_flow_matrices(trace, plan, window=5.0)
        via_columns = fused_feature_matrices(
            trace.times, trace.sizes, trace.directions, plan, window=5.0
        )
        for ours, other in zip(via_trace, via_columns):
            np.testing.assert_array_equal(ours, other)

    def test_rejects_bad_window_and_min_packets(self):
        trace = make_trace(n=10)
        plan = build_stack("original", seed=3).fused_plan(trace)
        with pytest.raises(ValueError):
            fused_flow_matrices(trace, plan, window=0.0)
        with pytest.raises(ValueError):
            fused_flow_matrices(trace, plan, window=5.0, min_packets=0)


class TestFlowsFeatureMatrixPreallocation:
    """The preallocated writer equals building each block and stacking."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("min_packets", [1, 2, 5])
    def test_equals_concatenated_per_flow_blocks(self, seed, min_packets):
        rng = np.random.default_rng(seed)
        flows = [make_trace(n=int(n), seed=seed + 50 + i) for i, n in
                 enumerate(rng.integers(0, 400, 6))]
        stacked = flows_feature_matrix(flows, 5.0, min_packets)
        reference = [flow_feature_matrix(f, 5.0, min_packets) for f in flows]
        expected = (
            np.concatenate(reference, axis=0)
            if reference
            else np.empty((0, 12))
        )
        assert stacked.shape == expected.shape
        np.testing.assert_array_equal(stacked, expected)

    def test_no_flows(self):
        assert flows_feature_matrix([], 5.0, 2).shape == (0, 12)


class TestWindowCacheFusedMemoization:
    def test_plan_cached_by_identity_with_replay(self):
        cache = WindowCache()
        trace = make_trace()
        scheme = build_stack("or", seed=3)
        calls = []

        def build():
            calls.append(1)
            return obs.captured(lambda: scheme.fused_plan(trace))

        plan1, sub1 = cache.fused_plan(scheme, trace, build)
        plan2, sub2 = cache.fused_plan(scheme, trace, build)
        assert len(calls) == 1
        assert plan1 is plan2
        assert sub1 is sub2
        assert sub1.metrics.counters["batch.fused_plans"] == 1

    def test_none_plans_are_cached_too(self):
        """Fallback schemes must not re-attempt fusion per request."""
        cache = WindowCache()
        trace = make_trace()
        scheme = build_stack("morphing", seed=3)
        calls = []

        def build():
            calls.append(1)
            return obs.captured(lambda: scheme.fused_plan(trace))

        plan1, _ = cache.fused_plan(scheme, trace, build)
        plan2, _ = cache.fused_plan(scheme, trace, build)
        assert plan1 is None and plan2 is None
        assert len(calls) == 1

    def test_fused_matrices_keyed_per_window_and_min_packets(self):
        cache = WindowCache()
        trace = make_trace()
        scheme = build_stack("or", seed=3)
        plan = scheme.fused_plan(trace)
        calls = []

        def build(window, min_packets):
            def run():
                calls.append((window, min_packets))
                return obs.captured(
                    lambda: fused_flow_matrices(trace, plan, window, min_packets)
                )

            return run

        first, _ = cache.fused_matrices(scheme, trace, 5.0, 2, build(5.0, 2))
        again, _ = cache.fused_matrices(scheme, trace, 5.0, 2, build(5.0, 2))
        other_window, _ = cache.fused_matrices(scheme, trace, 7.0, 2, build(7.0, 2))
        other_min, _ = cache.fused_matrices(scheme, trace, 5.0, 3, build(5.0, 3))
        assert calls == [(5.0, 2), (7.0, 2), (5.0, 3)]
        assert first is again
        assert other_window is not first and other_min is not first

    def test_hit_miss_counters(self):
        cache = WindowCache()
        trace = make_trace()
        scheme = build_stack("or", seed=3)

        def build_plan():
            return obs.captured(lambda: scheme.fused_plan(trace))

        _, sub = obs.captured(
            lambda: [
                cache.fused_plan(scheme, trace, build_plan),
                cache.fused_plan(scheme, trace, build_plan),
            ]
        )
        counters = sub.metrics.counters
        assert counters["proc.window_cache.plan_misses"] == 1
        assert counters["proc.window_cache.plan_hits"] == 1

    def test_clear_drops_fused_state(self):
        cache = WindowCache()
        trace = make_trace()
        scheme = build_stack("or", seed=3)
        calls = []

        def build():
            calls.append(1)
            return obs.captured(lambda: scheme.fused_plan(trace))

        cache.fused_plan(scheme, trace, build)
        cache.clear()
        cache.fused_plan(scheme, trace, build)
        assert len(calls) == 2
