"""Tests for per-window feature extraction."""

import numpy as np
import pytest

from repro.analysis.features import (
    FEATURE_NAMES,
    WindowFeatures,
    direction_dropout_variants,
    empty_direction_vector,
    extract_features,
)
from repro.traffic.trace import Trace


class TestFeatureVector:
    def test_twelve_features(self):
        assert len(FEATURE_NAMES) == 12
        assert FEATURE_NAMES[0] == "down_count"
        assert FEATURE_NAMES[6] == "up_count"

    def test_extraction_values(self, simple_trace):
        features = extract_features(simple_trace, window=5.0)
        vector = features.vector
        down_sizes = [100, 1500, 300, 1300]
        assert vector[0] == pytest.approx(np.log1p(4))
        assert vector[1] == max(down_sizes)
        assert vector[2] == min(down_sizes)
        assert vector[3] == pytest.approx(np.mean(down_sizes))
        assert vector[4] == pytest.approx(np.std(down_sizes))

    def test_interarrival_is_log(self, simple_trace):
        features = extract_features(simple_trace, window=5.0)
        # Downlink gaps: 0.5, 1.5, 0.5 -> mean 0.8333; encoded as log(iat + 1ms).
        mean_gap = (0.5 + 1.5 + 0.5) / 3
        assert features.vector[5] == pytest.approx(np.log(mean_gap + 1e-3), abs=1e-6)

    def test_empty_direction_encoding(self):
        trace = Trace.from_arrays([0.0, 1.0], [10, 20], directions=[0, 0])
        features = extract_features(trace, window=5.0)
        assert np.allclose(features.vector[6:], empty_direction_vector(5.0))

    def test_label_inherited_from_trace(self):
        trace = Trace.from_arrays([0.0, 1.0], [10, 20], label="gaming")
        assert extract_features(trace, 5.0).label == "gaming"

    def test_label_override(self):
        trace = Trace.from_arrays([0.0, 1.0], [10, 20], label="gaming")
        assert extract_features(trace, 5.0, label="x").label == "x"

    def test_rejects_bad_window(self, simple_trace):
        with pytest.raises(ValueError):
            extract_features(simple_trace, window=0.0)

    def test_vector_length_enforced(self):
        with pytest.raises(ValueError):
            WindowFeatures(np.zeros(5), "x")


class TestDirectionDropout:
    def test_two_variants_for_bidirectional(self, simple_trace):
        features = extract_features(simple_trace, 5.0)
        variants = direction_dropout_variants(features, 5.0)
        assert len(variants) == 2
        down_only, up_only = variants
        assert np.allclose(down_only.vector[6:], empty_direction_vector(5.0))
        assert np.allclose(up_only.vector[:6], empty_direction_vector(5.0))

    def test_variants_keep_label(self, simple_trace):
        features = extract_features(simple_trace, 5.0, label="bt")
        for variant in direction_dropout_variants(features, 5.0):
            assert variant.label == "bt"

    def test_one_sided_window_yields_one_variant(self):
        trace = Trace.from_arrays([0.0, 1.0], [10, 20], directions=[0, 0])
        features = extract_features(trace, 5.0)
        variants = direction_dropout_variants(features, 5.0)
        assert len(variants) == 1
