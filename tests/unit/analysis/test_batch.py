"""Tests for the vectorized batch featurization engine.

The batch engine must reproduce the legacy per-window path
(``sliding_windows`` → ``extract_features``) element-for-element; the
property tests below sweep randomized traces through both paths,
covering single-packet windows, empty directions, duplicate timestamps
and packets landing exactly on window edges.
"""

import numpy as np
import pytest

from repro.analysis.batch import (
    WindowCache,
    augment_direction_dropout,
    flow_feature_matrix,
    flows_feature_matrix,
)
from repro.analysis.features import (
    direction_dropout_variants,
    features_from_windows,
)
from repro.analysis.windows import sliding_windows, window_traces
from repro.traffic.trace import Trace


def legacy_matrix(trace: Trace, window: float, min_packets: int) -> np.ndarray:
    """The reference oracle: per-window featurization, stacked."""
    features = features_from_windows(
        sliding_windows(trace, window, min_packets), window
    )
    return np.array([f.vector for f in features]).reshape(len(features), 12)


def assert_matches_legacy(trace: Trace, window: float, min_packets: int) -> None:
    reference = legacy_matrix(trace, window, min_packets)
    batch = flow_feature_matrix(trace, window, min_packets)
    assert batch.shape == reference.shape
    if len(reference):
        # Count/max/min features involve no accumulation and must match
        # bit-for-bit; mean/std/interarrival may differ by summation-order
        # ulps, bounded far below any classifier-visible scale.
        exact = [0, 1, 2, 6, 7, 8]
        assert np.array_equal(batch[:, exact], reference[:, exact])
        np.testing.assert_allclose(batch, reference, rtol=1e-12, atol=1e-12)


def random_trace(rng: np.random.Generator, n: int, window: float) -> Trace:
    span = float(rng.uniform(1.0, 25 * window))
    times = np.sort(rng.uniform(0.0, span, n))
    if n > 3 and rng.random() < 0.5:
        # Pin a chunk of packets exactly onto window-edge multiples.
        k = int(rng.integers(1, n // 2))
        times[:k] = np.round(times[:k] / window) * window
        times = np.sort(times)
    sizes = rng.integers(1, 1577, n)
    directions = rng.choice([0, 1], n)
    return Trace.from_arrays(times, sizes, directions=directions, label="app")


class TestFlowFeatureMatrix:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("window", [0.7, 5.0, 60.0])
    def test_matches_legacy_on_random_traces(self, seed, window):
        rng = np.random.default_rng(seed)
        for _ in range(8):
            n = int(rng.integers(1, 300))
            min_packets = int(rng.integers(1, 4))
            assert_matches_legacy(random_trace(rng, n, window), window, min_packets)

    def test_single_packet_windows(self):
        trace = Trace.from_arrays([0.0, 7.0, 14.0], [100, 200, 300], directions=[0, 1, 0])
        assert_matches_legacy(trace, 5.0, 1)

    def test_empty_direction(self):
        trace = Trace.from_arrays(np.arange(20) * 0.5, np.full(20, 64), directions=np.zeros(20))
        assert_matches_legacy(trace, 5.0, 2)
        matrix = flow_feature_matrix(trace, 5.0, 2)
        # Uplink block carries the empty-direction encoding everywhere.
        assert np.all(matrix[:, 6:11] == 0.0)
        assert np.allclose(matrix[:, 11], np.log(5.0 + 1e-3))

    def test_packets_exactly_on_edges(self):
        # Every packet sits on a window boundary, including the final one.
        trace = Trace.from_arrays(np.arange(7) * 5.0, np.full(7, 700), directions=[0, 1] * 3 + [0])
        assert_matches_legacy(trace, 5.0, 1)

    def test_duplicate_timestamps(self):
        times = np.repeat([0.0, 2.0, 5.0, 5.0, 9.5], 3)
        trace = Trace.from_arrays(times, np.arange(1, 16), directions=[0, 1, 0] * 5)
        assert_matches_legacy(trace, 5.0, 1)

    def test_idle_gaps_beyond_cutoff(self):
        # W = 60 s > the 5 s idle cutoff: in-window gaps longer than 5 s
        # must be excluded from the interarrival mean.
        times = [0.0, 1.0, 20.0, 21.0, 55.0]
        trace = Trace.from_arrays(times, [10] * 5, directions=np.zeros(5))
        assert_matches_legacy(trace, 60.0, 1)

    def test_empty_trace(self):
        assert flow_feature_matrix(Trace.empty(), 5.0).shape == (0, 12)

    def test_min_packets_filter_matches_window_count(self):
        rng = np.random.default_rng(11)
        trace = random_trace(rng, 200, 5.0)
        windows = sliding_windows(trace, 5.0, min_packets=3)
        assert len(flow_feature_matrix(trace, 5.0, min_packets=3)) == len(windows)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            flow_feature_matrix(Trace.empty(), 0.0)

    def test_rejects_bad_min_packets(self):
        with pytest.raises(ValueError):
            flow_feature_matrix(Trace.empty(), 5.0, min_packets=0)


class TestFlowsFeatureMatrix:
    def test_concatenates_in_flow_order(self):
        rng = np.random.default_rng(21)
        flows = [random_trace(rng, 120, 5.0) for _ in range(3)]
        stacked = flows_feature_matrix(flows, 5.0, 2)
        per_flow = [flow_feature_matrix(f, 5.0, 2) for f in flows]
        assert np.array_equal(stacked, np.concatenate(per_flow))
        assert len(stacked) == len(window_traces(flows, 5.0, 2))

    def test_empty_input(self):
        assert flows_feature_matrix([], 5.0).shape == (0, 12)


class TestAugmentDirectionDropout:
    def test_matches_reference_variants(self):
        rng = np.random.default_rng(31)
        trace = random_trace(rng, 250, 5.0)
        matrix = flow_feature_matrix(trace, 5.0, 2)
        features = features_from_windows(sliding_windows(trace, 5.0, 2), 5.0)
        reference = []
        for item in features:
            reference.extend(v.vector for v in direction_dropout_variants(item, 5.0))
        batch = augment_direction_dropout(matrix, 5.0)
        reference = np.array(reference).reshape(len(reference), 12)
        assert batch.shape == reference.shape
        np.testing.assert_allclose(batch, reference, rtol=1e-12, atol=1e-12)

    def test_empty_matrix(self):
        assert augment_direction_dropout(np.empty((0, 12)), 5.0).shape == (0, 12)


class TestWindowCache:
    def test_feature_matrix_cached_per_flow_and_window(self):
        rng = np.random.default_rng(41)
        cache = WindowCache()
        flow = random_trace(rng, 100, 5.0)
        first = cache.feature_matrix(flow, 5.0, 2)
        second = cache.feature_matrix(flow, 5.0, 2)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)
        cache.feature_matrix(flow, 60.0, 2)  # different window -> miss
        assert cache.misses == 2

    def test_window_key_normalizes_float_jitter(self):
        rng = np.random.default_rng(42)
        cache = WindowCache()
        flow = random_trace(rng, 100, 5.0)
        cache.feature_matrix(flow, 0.3, 2)
        assert cache.feature_matrix(flow, 0.1 + 0.2, 2) is cache.feature_matrix(flow, 0.3, 2)
        assert cache.misses == 1

    def test_observable_flows_builds_once(self):
        trace = Trace.from_arrays([0.0, 1.0], [10, 20])
        cache = WindowCache()
        calls = []

        def build():
            calls.append(1)
            return [trace]

        scheme = object()
        assert cache.observable_flows(scheme, trace, build) == [trace]
        assert cache.observable_flows(scheme, trace, build) == [trace]
        assert len(calls) == 1
        # A different scheme re-reshapes.
        cache.observable_flows(object(), trace, build)
        assert len(calls) == 2

    def test_clear(self):
        cache = WindowCache()
        trace = Trace.from_arrays([0.0, 1.0], [10, 20])
        cache.feature_matrix(trace, 5.0, 2)
        cache.clear()
        assert (cache.hits, cache.misses) == (0, 0)
        cache.feature_matrix(trace, 5.0, 2)
        assert cache.misses == 1
