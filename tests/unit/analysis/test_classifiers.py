"""Tests for the from-scratch classifiers."""

import numpy as np
import pytest

from repro.analysis.classifiers import (
    GaussianNaiveBayes,
    KNearestNeighbors,
    LinearSvm,
    MlpClassifier,
    best_classifier,
    default_attackers,
)


def _blobs(rng, n_per_class=80, n_classes=3, spread=0.5):
    centers = rng.normal(0, 4.0, size=(n_classes, 6))
    xs, ys = [], []
    for index, center in enumerate(centers):
        xs.append(center + rng.normal(0, spread, size=(n_per_class, 6)))
        ys.append(np.full(n_per_class, index))
    x = np.vstack(xs)
    y = np.concatenate(ys)
    order = rng.permutation(len(x))
    return x[order], y[order]


ALL_CLASSIFIERS = [
    lambda: LinearSvm(seed=0, epochs=20),
    lambda: MlpClassifier(seed=0, epochs=40),
    lambda: GaussianNaiveBayes(),
    lambda: KNearestNeighbors(k=3),
]


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS, ids=["svm", "nn", "bayes", "knn"])
class TestCommonBehaviour:
    def test_separable_blobs(self, factory, rng):
        x, y = _blobs(rng)
        classifier = factory().fit(x, y, 3)
        assert classifier.score(x, y) > 0.95

    def test_generalizes_to_fresh_draws(self, factory, rng):
        x, y = _blobs(rng)
        classifier = factory().fit(x, y, 3)
        x2, y2 = _blobs(np.random.default_rng(123))
        # Same generator parameters -> different sample, same geometry is
        # not guaranteed, so draw from the *same* rng state family:
        x_train, x_test = x[: len(x) // 2], x[len(x) // 2 :]
        y_train, y_test = y[: len(y) // 2], y[len(y) // 2 :]
        classifier = factory().fit(x_train, y_train, 3)
        assert classifier.score(x_test, y_test) > 0.9

    def test_predict_shape(self, factory, rng):
        x, y = _blobs(rng)
        classifier = factory().fit(x, y, 3)
        assert classifier.predict(x[:7]).shape == (7,)

    def test_empty_fit_rejected(self, factory):
        with pytest.raises((ValueError, IndexError)):
            factory().fit(np.zeros((0, 6)), np.zeros(0, dtype=int), 3)

    def test_unfitted_predict_raises(self, factory):
        with pytest.raises(RuntimeError):
            factory().predict(np.zeros((2, 6)))


class TestSvmSpecifics:
    def test_decision_function_shape(self, rng):
        x, y = _blobs(rng)
        svm = LinearSvm(seed=0, epochs=10).fit(x, y, 3)
        assert svm.decision_function(x[:5]).shape == (5, 3)

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            LinearSvm(regularization=0.0)
        with pytest.raises(ValueError):
            LinearSvm(epochs=0)
        with pytest.raises(ValueError):
            LinearSvm(batch_size=0)

    def test_batch_larger_than_dataset_is_clamped(self, rng):
        x, y = _blobs(rng, n_per_class=4)
        svm = LinearSvm(seed=0, epochs=10, batch_size=4096).fit(x, y, 3)
        assert svm.predict(x).shape == (len(x),)


class TestMlpSpecifics:
    def test_predict_proba_sums_to_one(self, rng):
        x, y = _blobs(rng)
        mlp = MlpClassifier(seed=0, epochs=20).fit(x, y, 3)
        probs = mlp.predict_proba(x[:10])
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            MlpClassifier(hidden=0)
        with pytest.raises(ValueError):
            MlpClassifier(learning_rate=-1.0)


class TestKnnSpecifics:
    def test_k_larger_than_dataset_is_clamped(self, rng):
        x, y = _blobs(rng, n_per_class=2)
        knn = KNearestNeighbors(k=100).fit(x, y, 3)
        assert knn.predict(x).shape == (len(x),)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNearestNeighbors(k=0)


class TestBayesSpecifics:
    def test_log_likelihood_ranks_true_class(self, rng):
        x, y = _blobs(rng)
        bayes = GaussianNaiveBayes().fit(x, y, 3)
        likelihood = bayes.log_likelihood(x[:20])
        assert (np.argmax(likelihood, axis=1) == y[:20]).mean() > 0.9

    def test_missing_class_does_not_crash(self, rng):
        x, y = _blobs(rng, n_classes=2)
        bayes = GaussianNaiveBayes().fit(x, y, 5)  # classes 2..4 unseen
        assert set(bayes.predict(x)) <= {0, 1}


class TestSelection:
    def test_best_classifier_returns_fitted_winner(self, rng):
        x, y = _blobs(rng)
        winner, accuracy = best_classifier(
            [LinearSvm(seed=0, epochs=10), GaussianNaiveBayes()], x, y, 3
        )
        assert accuracy > 0.8
        assert winner.predict(x[:3]).shape == (3,)

    def test_default_attackers_are_svm_and_nn(self):
        names = {c.name for c in default_attackers()}
        assert names == {"svm", "nn"}

    def test_requires_candidates(self, rng):
        x, y = _blobs(rng)
        with pytest.raises(ValueError):
            best_classifier([], x, y, 3)


class TestOnlineClassifierProtocol:
    def test_membership_is_structural(self):
        from repro.analysis.classifiers import OnlineClassifier

        assert isinstance(LinearSvm(), OnlineClassifier)
        assert isinstance(GaussianNaiveBayes(), OnlineClassifier)
        assert not isinstance(MlpClassifier(), OnlineClassifier)
        assert not isinstance(KNearestNeighbors(), OnlineClassifier)

    @pytest.mark.parametrize(
        "factory", [lambda: LinearSvm(seed=0), lambda: GaussianNaiveBayes()],
        ids=["svm", "bayes"],
    )
    def test_partial_fit_rejects_empty_batch(self, factory):
        with pytest.raises(ValueError):
            factory().partial_fit(np.zeros((0, 6)), np.zeros(0, dtype=int), 3)

    @pytest.mark.parametrize(
        "factory", [lambda: LinearSvm(seed=0), lambda: GaussianNaiveBayes()],
        ids=["svm", "bayes"],
    )
    def test_partial_fit_rejects_shape_drift(self, factory, rng):
        x, y = _blobs(rng)
        classifier = factory().partial_fit(x, y, 3)
        with pytest.raises(ValueError):
            classifier.partial_fit(x[:, :4], y, 3)


class TestBayesPartialFit:
    def test_streaming_learns_blobs(self, rng):
        x, y = _blobs(rng)
        bayes = GaussianNaiveBayes()
        for start in range(0, len(x), 16):
            bayes.partial_fit(x[start : start + 16], y[start : start + 16], 3)
        assert bayes.score(x, y) > 0.95

    def test_batching_is_irrelevant(self, rng):
        """Sufficient statistics make the model chunking-invariant."""
        x, y = _blobs(rng)
        one_shot = GaussianNaiveBayes().partial_fit(x, y, 3)
        chunked = GaussianNaiveBayes()
        for start in range(0, len(x), 7):
            chunked.partial_fit(x[start : start + 7], y[start : start + 7], 3)
        np.testing.assert_allclose(chunked.means_, one_shot.means_, rtol=1e-9)
        np.testing.assert_allclose(chunked.variances_, one_shot.variances_, rtol=1e-9)
        np.testing.assert_array_equal(chunked.log_priors_, one_shot.log_priors_)

    def test_partial_fit_agrees_with_batch_fit(self, rng):
        x, y = _blobs(rng)
        batch = GaussianNaiveBayes().fit(x, y, 3)
        online = GaussianNaiveBayes().partial_fit(x, y, 3)
        np.testing.assert_allclose(online.means_, batch.means_, rtol=1e-9)
        np.testing.assert_allclose(online.variances_, batch.variances_, rtol=1e-6)
        assert np.array_equal(online.predict(x), batch.predict(x))

    def test_fit_seeds_the_streaming_statistics(self, rng):
        """fit() then partial_fit() equals partial_fit() twice, exactly."""
        x, y = _blobs(rng)
        half = len(x) // 2
        warm = GaussianNaiveBayes().fit(x[:half], y[:half], 3)
        warm.partial_fit(x[half:], y[half:], 3)
        cold = GaussianNaiveBayes()
        cold.partial_fit(x[:half], y[:half], 3)
        cold.partial_fit(x[half:], y[half:], 3)
        np.testing.assert_array_equal(warm.means_, cold.means_)
        np.testing.assert_array_equal(warm.variances_, cold.variances_)
        np.testing.assert_array_equal(warm.log_priors_, cold.log_priors_)

    def test_rejects_out_of_range_labels(self, rng):
        x, y = _blobs(rng)
        with pytest.raises(ValueError):
            GaussianNaiveBayes().partial_fit(x, y + 5, 3)


class TestSvmPartialFit:
    def test_streaming_learns_blobs(self, rng):
        x, y = _blobs(rng)
        svm = LinearSvm(seed=0)
        for _ in range(20):  # several passes, fed in stream-sized slices
            for start in range(0, len(x), 32):
                svm.partial_fit(x[start : start + 32], y[start : start + 32], 3)
        assert svm.score(x, y) > 0.9

    def test_call_boundaries_do_not_matter_on_batch_multiples(self, rng):
        """Chunking into batch_size multiples reproduces one big call."""
        x, y = _blobs(rng)
        one_call = LinearSvm(seed=0, batch_size=30).partial_fit(x[:240], y[:240], 3)
        chunked = LinearSvm(seed=0, batch_size=30)
        for start in range(0, 240, 60):
            chunked.partial_fit(x[start : start + 60], y[start : start + 60], 3)
        np.testing.assert_array_equal(chunked.weights_, one_call.weights_)
        np.testing.assert_array_equal(chunked.bias_, one_call.bias_)

    def test_warm_start_continues_the_schedule(self, rng):
        x, y = _blobs(rng)
        svm = LinearSvm(seed=0, epochs=10).fit(x, y, 3)
        steps_after_fit = svm._online_step
        assert steps_after_fit > 0
        before = svm.weights_.copy()
        svm.partial_fit(x[:16], y[:16], 3)
        assert svm._online_step == steps_after_fit + 1
        # A converged schedule takes small steps: refinement, not reset.
        assert np.abs(svm.weights_ - before).max() < np.abs(before).max()
        assert svm.score(x, y) > 0.9
