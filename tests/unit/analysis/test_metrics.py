"""Tests for the accuracy / FP metrics of Sec. IV."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    ConfusionMatrix,
    accuracy_by_class,
    false_positive_rates,
    mean_accuracy,
)

CLASSES = ("a", "b", "c")


def _confusion() -> ConfusionMatrix:
    # truth a: 8 right, 2 as b; truth b: 10 right; truth c: 5 right, 5 as b.
    matrix = np.array([[8, 2, 0], [0, 10, 0], [0, 5, 5]])
    return ConfusionMatrix(CLASSES, matrix)


class TestConfusionMatrix:
    def test_from_predictions(self):
        confusion = ConfusionMatrix.from_predictions(
            ["a", "a", "b"], ["a", "b", "b"], CLASSES
        )
        assert confusion.matrix[0, 0] == 1
        assert confusion.matrix[0, 1] == 1
        assert confusion.total == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ConfusionMatrix.from_predictions(["a"], ["a", "b"], CLASSES)

    def test_unknown_true_label_named_in_error(self):
        # An app present in evaluation but absent from training must fail
        # with a diagnosable error, not a bare KeyError.
        with pytest.raises(ValueError, match="true label 'mystery'"):
            ConfusionMatrix.from_predictions(["mystery"], ["a"], CLASSES)

    def test_unknown_predicted_label_named_in_error(self):
        with pytest.raises(ValueError, match="predicted label 'zz'"):
            ConfusionMatrix.from_predictions(["a"], ["zz"], CLASSES)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ConfusionMatrix(CLASSES, np.zeros((2, 2)))

    def test_merge(self):
        merged = _confusion().merge(_confusion())
        assert merged.total == 2 * _confusion().total

    def test_merge_requires_same_classes(self):
        other = ConfusionMatrix(("x", "y"), np.zeros((2, 2), dtype=int))
        with pytest.raises(ValueError):
            _confusion().merge(other)


class TestAccuracy:
    def test_per_class(self):
        accuracy = accuracy_by_class(_confusion())
        assert accuracy["a"] == pytest.approx(80.0)
        assert accuracy["b"] == pytest.approx(100.0)
        assert accuracy["c"] == pytest.approx(50.0)

    def test_mean_is_macro_average(self):
        # "mean accuracy is ... overall average recognition probability".
        assert mean_accuracy(_confusion()) == pytest.approx((80 + 100 + 50) / 3)

    def test_empty_class_is_nan(self):
        matrix = np.array([[5, 0, 0], [0, 0, 0], [0, 0, 5]])
        accuracy = accuracy_by_class(ConfusionMatrix(CLASSES, matrix))
        assert np.isnan(accuracy["b"])

    def test_mean_skips_nan(self):
        matrix = np.array([[5, 0, 0], [0, 0, 0], [0, 0, 5]])
        assert mean_accuracy(ConfusionMatrix(CLASSES, matrix)) == pytest.approx(100.0)


class TestFalsePositives:
    def test_fp_definition(self):
        # FP(b) = non-b classified b / non-b = (2 + 5) / 20.
        fp = false_positive_rates(_confusion())
        assert fp["b"] == pytest.approx(100.0 * 7 / 20)
        assert fp["a"] == pytest.approx(0.0)
        assert fp["c"] == pytest.approx(0.0)

    def test_high_accuracy_can_coexist_with_high_fp(self):
        # The paper's Sec. IV-C point: class b has 100% accuracy AND the
        # highest FP — "high accuracy does not mean an adversary is easy
        # to detect the application".
        confusion = _confusion()
        assert accuracy_by_class(confusion)["b"] == 100.0
        assert false_positive_rates(confusion)["b"] > 30.0
