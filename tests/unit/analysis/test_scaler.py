"""Tests for feature standardization."""

import numpy as np
import pytest

from repro.analysis.scaler import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        x = rng.normal(5.0, 3.0, size=(500, 4))
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_passthrough(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled[:, 0], 0.0)  # centered, not divided by ~0

    def test_transform_uses_train_statistics(self, rng):
        train = rng.normal(0, 1, size=(100, 2))
        test = rng.normal(10, 1, size=(100, 2))
        scaler = StandardScaler().fit(train)
        scaled_test = scaler.transform(test)
        assert scaled_test.mean() > 5  # not re-centered on the test set

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))
