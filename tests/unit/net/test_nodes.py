"""Tests for WLAN nodes (station, AP, sniffer)."""

import numpy as np
import pytest

from repro.mac.addresses import MacAddress
from repro.mac.ap import AccessPointDataPlane
from repro.mac.driver import ClientDriver
from repro.mac.frames import Dot11Frame
from repro.net.channel import LogDistanceChannel, Position
from repro.net.nodes import AccessPointNode, SnifferNode, StationNode

AP_ADDR = MacAddress.parse("00:aa:00:aa:00:aa")
STA_ADDR = MacAddress.parse("00:11:22:33:44:55")


@pytest.fixture
def sniffer():
    return SnifferNode(position=Position(5.0, 5.0), channel=None)


@pytest.fixture
def channel_model():
    return LogDistanceChannel(shadowing_sigma_db=0.0)


class TestStationPower:
    def test_fixed_power_without_tpc(self):
        station = StationNode(ClientDriver(STA_ADDR), Position(0, 0), tx_power_dbm=15.0)
        assert station.transmit_power() == 15.0

    def test_tpc_adds_per_packet_noise(self, rng):
        station = StationNode(
            ClientDriver(STA_ADDR),
            Position(0, 0),
            tx_power_dbm=15.0,
            tpc_rng=rng,
            tpc_range_db=10.0,
        )
        powers = [station.transmit_power() for _ in range(200)]
        assert all(10.0 <= p <= 20.0 for p in powers)
        assert np.std(powers) > 0.2

    def test_tpc_gives_each_identity_its_own_level(self, rng):
        station = StationNode(
            ClientDriver(STA_ADDR),
            Position(0, 0),
            tx_power_dbm=15.0,
            tpc_rng=rng,
            tpc_range_db=12.0,
        )
        id_a = MacAddress(0x020000000001)
        id_b = MacAddress(0x020000000002)
        mean_a = np.mean([station.transmit_power(id_a) for _ in range(100)])
        mean_b = np.mean([station.transmit_power(id_b) for _ in range(100)])
        # Distinct virtual identities transmit at distinct mean powers so
        # they pass as different users (Sec. V-A).
        assert abs(mean_a - mean_b) > 0.5
        # The offset is sticky: re-querying id_a reproduces its level.
        again = np.mean([station.transmit_power(id_a) for _ in range(100)])
        assert abs(again - mean_a) < 1.0


class TestSniffer:
    def test_captures_with_rssi(self, sniffer, channel_model):
        frame = Dot11Frame(src=STA_ADDR, dst=AP_ADDR, payload_size=100, channel=1)
        assert sniffer.observe(frame, Position(0, 0), channel_model)
        assert len(sniffer.captured) == 1
        assert sniffer.captured[0].meta["rssi"] < 0

    def test_channel_filter(self, channel_model):
        sniffer = SnifferNode(position=Position(1, 1), channel=6)
        on_1 = Dot11Frame(src=STA_ADDR, dst=AP_ADDR, payload_size=10, channel=1)
        on_6 = Dot11Frame(src=STA_ADDR, dst=AP_ADDR, payload_size=10, channel=6)
        assert not sniffer.observe(on_1, Position(0, 0), channel_model)
        assert sniffer.observe(on_6, Position(0, 0), channel_model)

    def test_noise_floor_drops_weak_frames(self):
        model = LogDistanceChannel(shadowing_sigma_db=0.0, noise_floor_dbm=-60.0)
        sniffer = SnifferNode(position=Position(1000.0, 0.0))
        frame = Dot11Frame(src=STA_ADDR, dst=AP_ADDR, payload_size=10)
        assert not sniffer.observe(frame, Position(0, 0), model)

    def test_capture_by_source(self, sniffer, channel_model):
        for src in (STA_ADDR, AP_ADDR, STA_ADDR):
            frame = Dot11Frame(src=src, dst=AP_ADDR, payload_size=10)
            sniffer.observe(frame, Position(0, 0), channel_model)
        groups = sniffer.capture_by_source()
        assert len(groups[STA_ADDR]) == 2

    def test_flows_by_station_identity(self, sniffer, channel_model):
        # Downlink frame to the station and uplink frame from it form one
        # bidirectional flow keyed by the station-side address.
        down = Dot11Frame(src=AP_ADDR, dst=STA_ADDR, payload_size=100, time=0.0)
        up = Dot11Frame(src=STA_ADDR, dst=AP_ADDR, payload_size=50, time=1.0)
        sniffer.observe(down, Position(0, 0), channel_model)
        sniffer.observe(up, Position(3, 0), channel_model)
        flows = sniffer.flows_by_station_address(AP_ADDR)
        assert list(flows) == [STA_ADDR]
        flow = flows[STA_ADDR]
        assert len(flow) == 2
        assert list(flow.directions) == [0, 1]

    def test_third_party_frames_ignored_in_flows(self, sniffer, channel_model):
        other = MacAddress.parse("00:77:77:77:77:77")
        frame = Dot11Frame(src=other, dst=STA_ADDR, payload_size=10)
        sniffer.observe(frame, Position(0, 0), channel_model)
        assert sniffer.flows_by_station_address(AP_ADDR) == {}


class TestApNode:
    def test_tpc_on_ap(self, rng):
        node = AccessPointNode(
            AccessPointDataPlane(address=AP_ADDR),
            Position(0, 0),
            tx_power_dbm=18.0,
            tpc_rng=rng,
            tpc_range_db=6.0,
        )
        powers = {node.transmit_power() for _ in range(20)}
        assert len(powers) > 1
        assert node.address == AP_ADDR
