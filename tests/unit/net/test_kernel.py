"""Tests for the discrete-event kernel."""

import pytest

from repro.net.kernel import EventKernel


class TestScheduling:
    def test_runs_in_time_order(self):
        kernel = EventKernel()
        log = []
        kernel.schedule(2.0, lambda: log.append("b"))
        kernel.schedule(1.0, lambda: log.append("a"))
        kernel.schedule(3.0, lambda: log.append("c"))
        kernel.run()
        assert log == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        kernel = EventKernel()
        log = []
        for name in "xyz":
            kernel.schedule(1.0, lambda n=name: log.append(n))
        kernel.run()
        assert log == ["x", "y", "z"]

    def test_now_advances(self):
        kernel = EventKernel()
        seen = []
        kernel.schedule(5.0, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [5.0]

    def test_cannot_schedule_in_past(self):
        kernel = EventKernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule(0.5, lambda: None)

    def test_schedule_in(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(1.0, lambda: kernel.schedule_in(0.5, lambda: fired.append(kernel.now)))
        kernel.run()
        assert fired == [1.5]

    def test_schedule_in_rejects_negative(self):
        with pytest.raises(ValueError):
            EventKernel().schedule_in(-1.0, lambda: None)


class TestRunControl:
    def test_run_until(self):
        kernel = EventKernel()
        log = []
        for t in (1.0, 2.0, 3.0):
            kernel.schedule(t, lambda t=t: log.append(t))
        executed = kernel.run(until=2.0)
        assert executed == 2
        assert kernel.pending == 1
        assert kernel.now == 2.0

    def test_run_until_advances_clock_when_idle(self):
        kernel = EventKernel()
        kernel.run(until=7.0)
        assert kernel.now == 7.0

    def test_max_events(self):
        kernel = EventKernel()
        for t in range(5):
            kernel.schedule(float(t), lambda: None)
        assert kernel.run(max_events=3) == 3

    def test_cancelled_events_skipped(self):
        kernel = EventKernel()
        log = []
        event = kernel.schedule(1.0, lambda: log.append("cancelled"))
        kernel.schedule(2.0, lambda: log.append("kept"))
        event.cancel()
        kernel.run()
        assert log == ["kept"]

    def test_processed_counter(self):
        kernel = EventKernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        assert kernel.processed == 1

    def test_events_may_schedule_more_events(self):
        kernel = EventKernel()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                kernel.schedule_in(1.0, lambda: chain(n + 1))

        kernel.schedule(0.0, lambda: chain(0))
        kernel.run()
        assert log == [0, 1, 2, 3]
