"""Tests for the radio channel model."""

import numpy as np
import pytest

from repro.net.channel import LogDistanceChannel, Position


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Position(1, 2), Position(-3, 7)
        assert a.distance_to(b) == b.distance_to(a)


class TestPathLoss:
    def test_monotone_in_distance(self):
        channel = LogDistanceChannel(shadowing_sigma_db=0.0)
        losses = [channel.path_loss_db(d) for d in (1, 5, 10, 50)]
        assert losses == sorted(losses)

    def test_reference_loss_at_1m(self):
        channel = LogDistanceChannel(reference_loss_db=40.0, shadowing_sigma_db=0.0)
        assert channel.path_loss_db(1.0) == pytest.approx(40.0)

    def test_distance_clamped_below_1m(self):
        channel = LogDistanceChannel(shadowing_sigma_db=0.0)
        assert channel.path_loss_db(0.1) == channel.path_loss_db(1.0)

    def test_exponent_slope(self):
        channel = LogDistanceChannel(exponent=3.0, shadowing_sigma_db=0.0)
        # 10x distance costs 10*n dB.
        assert channel.path_loss_db(10.0) - channel.path_loss_db(1.0) == pytest.approx(30.0)


class TestRssi:
    def test_deterministic_without_rng(self):
        channel = LogDistanceChannel(shadowing_sigma_db=2.0)
        assert channel.rssi_dbm(15.0, 10.0) == channel.rssi_dbm(15.0, 10.0)

    def test_shadowing_adds_noise(self, rng):
        channel = LogDistanceChannel(shadowing_sigma_db=3.0)
        values = [channel.rssi_dbm(15.0, 10.0, rng) for _ in range(50)]
        assert np.std(values) > 1.0

    def test_residential_calibration(self):
        # The paper measured around -50 dBm in its residential setup
        # (footnote 1); a station ~10 m away should land in that region.
        channel = LogDistanceChannel(shadowing_sigma_db=0.0)
        rssi = channel.rssi_dbm(18.0, 10.0)
        assert -70 < rssi < -40

    def test_receivability(self):
        channel = LogDistanceChannel(noise_floor_dbm=-96.0)
        assert channel.is_receivable(-90.0)
        assert not channel.is_receivable(-97.0)
