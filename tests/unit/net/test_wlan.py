"""Tests for the end-to-end WLAN simulation."""

import pytest

from repro.core.schedulers import OrthogonalReshaper
from repro.net.channel import Position
from repro.net.wlan import WlanSimulation
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator


@pytest.fixture
def sim():
    return WlanSimulation.build(seed=5)


class TestTopology:
    def test_add_station(self, sim):
        station = sim.add_station("sta0", Position(4.0, 0.0))
        assert station.address != sim.ap.address
        assert "sta0" in sim.stations

    def test_duplicate_station_rejected(self, sim):
        sim.add_station("sta0", Position(4.0, 0.0))
        with pytest.raises(ValueError):
            sim.add_station("sta0", Position(5.0, 0.0))


class TestConfiguration:
    def test_handshake_grants_interfaces(self, sim):
        station = sim.add_station("sta0", Position(4.0, 0.0))
        granted = sim.configure_virtual_interfaces(station, 3)
        assert granted == 3
        assert station.driver.interface_count == 3
        assert sim.ap.data_plane.uses_virtual_interfaces(station.address)

    def test_handshake_frames_are_sniffable_but_opaque(self, sim):
        station = sim.add_station("sta0", Position(4.0, 0.0))
        sim.configure_virtual_interfaces(station, 3)
        management = [
            f for f in sim.sniffer.captured if f.frame_type.value == "management"
        ]
        assert len(management) == 2  # request + reply
        # The captured payloads are ciphertext: no virtual address leaks.
        for virtual in station.driver.vaps.addresses:
            for frame in management:
                assert str(virtual).encode() not in frame.payload


class TestReplay:
    def test_replay_produces_virtual_flows(self, sim):
        station = sim.add_station(
            "sta0", Position(4.0, 0.0), scheduler=OrthogonalReshaper.paper_default()
        )
        sim.configure_virtual_interfaces(station, 3)
        trace = TrafficGenerator(seed=9).generate(AppType.BITTORRENT, 10.0)
        sim.replay_trace("sta0", trace)
        sim.run()
        flows = sim.captured_flows()
        virtual_identities = [
            addr for addr in flows if station.driver.vaps.owns(addr)
        ]
        assert len(virtual_identities) >= 2  # multiple observable flows

    def test_flows_carry_rssi(self, sim):
        station = sim.add_station("sta0", Position(4.0, 0.0))
        sim.configure_virtual_interfaces(station, 1)
        trace = TrafficGenerator(seed=9).generate(AppType.CHATTING, 10.0)
        sim.replay_trace("sta0", trace)
        sim.run()
        flows = sim.captured_flows()
        assert flows, "sniffer should have captured flows"
        import numpy as np

        flow = next(iter(flows.values()))
        assert not np.all(np.isnan(flow.rssi))

    def test_ap_translation_keeps_upper_layers_clean(self, sim):
        station = sim.add_station(
            "sta0", Position(4.0, 0.0), scheduler=OrthogonalReshaper.paper_default()
        )
        sim.configure_virtual_interfaces(station, 3)
        trace = TrafficGenerator(seed=9).generate(AppType.CHATTING, 10.0)
        sim.replay_trace("sta0", trace)
        sim.run()
        # Everything the AP forwarded to the distribution system carries
        # the client's unique physical address (Fig. 3).
        uplinks = sim.ap.data_plane.forwarded_to_ds
        assert uplinks
        assert all(frame.src == station.address for frame in uplinks)
        # Everything delivered to the client's upper layers is re-addressed.
        delivered = station.driver.delivered_to_upper
        assert delivered
        assert all(frame.dst == station.address for frame in delivered)
