"""Scheme objects across their consumers: runner, adaptive loop, grid."""

import numpy as np
import pytest

from repro.experiments.registry import ScenarioParams
from repro.experiments.runner import ExperimentRunner
from repro.schemes import (
    SchemeSpec,
    build_scheme,
    build_stack,
    legacy_scheme_spec,
)
from repro.stream.adaptive import AdaptiveReshaper
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator

TINY = ScenarioParams(
    seed=5, train_duration=30.0, eval_duration=20.0,
    train_sessions=1, eval_sessions=1,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(TINY.build())


@pytest.fixture(scope="module")
def trace():
    return TrafficGenerator(seed=31).generate(AppType.VIDEO, duration=15.0)


class TestRunnerSchemes:
    def test_scheme_identity_is_stable_per_recipe(self, runner):
        spec = legacy_scheme_spec("OR")
        assert runner.scheme(spec) is runner.scheme(spec)
        # Aliases fold to the same canonical recipe (and memo entry).
        assert runner.scheme("OR") is runner.scheme("or")
        assert runner.scheme("or") is not runner.scheme("or+fh")

    def test_observable_flows_accepts_every_scheme_spelling(self, runner, trace):
        from_obj = runner.observable_flows(runner.scheme("or"), trace)
        from_str = runner.observable_flows("or", trace)
        from_spec = runner.observable_flows(SchemeSpec("or"), trace)
        from_tuple = runner.observable_flows((SchemeSpec("or"),), trace)
        for flows in (from_str, from_spec, from_tuple):
            assert all(a is b for a, b in zip(flows, from_obj))

    def test_evaluate_scheme_accepts_spec_directly(self, runner):
        by_spec = runner.evaluate_scheme(legacy_scheme_spec("OR"), 5.0)
        by_obj = runner.evaluate_scheme(runner.scheme(legacy_scheme_spec("OR")), 5.0)
        np.testing.assert_array_equal(
            by_spec.confusion.matrix, by_obj.confusion.matrix
        )

    def test_stacked_scheme_evaluates_end_to_end(self, runner):
        report = runner.evaluate_scheme("padding+or", 5.0)
        assert 0.0 <= report.mean_accuracy <= 100.0


class TestAdaptiveReshaperSchemes:
    def test_accepts_reshaper_backed_scheme(self):
        defender = AdaptiveReshaper(build_scheme("or"), seed=1)
        assert defender.interfaces == 3
        epoch, iface = defender.assign(0.0, 1500, 0)
        assert epoch == 0 and 0 <= iface < 3

    def test_rejects_defense_schemes(self):
        with pytest.raises(TypeError, match="no per-packet scheduler"):
            AdaptiveReshaper(build_scheme("padding"))
        with pytest.raises(TypeError, match="no per-packet scheduler"):
            AdaptiveReshaper(build_stack("padding+or"))

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError, match="Reshaper or reshaper-backed"):
            AdaptiveReshaper(object())


class TestSchemeApplyMany:
    def test_apply_many_is_elementwise(self, trace):
        scheme = build_scheme("or")
        results = scheme.apply_many([trace, trace])
        assert len(results) == 2
        for key in results[0].flows:
            np.testing.assert_array_equal(
                results[0].flows[key].times, results[1].flows[key].times
            )

    def test_fh_channels_param_must_parse(self):
        with pytest.raises(ValueError, match="channels"):
            build_scheme(SchemeSpec("fh", (("channels", ""),)))


class TestCombinedGridApi:
    def test_programmatic_entry_point(self):
        from repro.experiments import combined_grid

        result = combined_grid(
            TINY, options={"schemes": "or,padding+or", "classifiers": "bayes"}
        )
        assert {cell.composition for cell in result.cells} == {"or", "padding+or"}
        best = result.best_defense()
        assert best.mean_accuracy == min(c.mean_accuracy for c in result.cells)

    def test_empty_scheme_list_rejected(self):
        from repro.experiments import registry as experiment_registry

        spec = experiment_registry.get("combined_grid")
        with pytest.raises(ValueError, match="at least one composition"):
            spec.build_cells(TINY, spec.resolve_options({"schemes": " , "}))

    def test_unknown_classifier_rejected(self):
        from repro.experiments import registry as experiment_registry

        spec = experiment_registry.get("combined_grid")
        with pytest.raises(ValueError, match="classifiers"):
            spec.build_cells(
                TINY, spec.resolve_options({"classifiers": "forest"})
            )

    def test_scheme_params_must_hit_a_stage(self):
        from repro.experiments import registry as experiment_registry

        spec = experiment_registry.get("combined_grid")
        with pytest.raises(ValueError, match="matches no stage"):
            spec.build_cells(
                TINY,
                spec.resolve_options(
                    {"schemes": "padding", "scheme_params": "interfaces=5"}
                ),
            )
