"""SchemeSpec: parsing, canonical form, JSON round trip."""

import pickle

import pytest

from repro.schemes import (
    SchemeSpec,
    canonical_stack,
    parse_stack,
    specs_from_json,
    specs_to_json,
    stack_label,
)


class TestSchemeSpec:
    def test_params_are_sorted_and_hashable(self):
        a = SchemeSpec("or", (("interfaces", 3), ("boundaries", "")))
        b = SchemeSpec("or", (("boundaries", ""), ("interfaces", 3)))
        assert a == b
        assert hash(a) == hash(b)
        assert {a, b} == {a}

    def test_picklable(self):
        spec = SchemeSpec("ra", (("interfaces", 5),))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_with_params_merges(self):
        spec = SchemeSpec("or", (("interfaces", 3),))
        derived = spec.with_params(interfaces=5, boundaries="1,2")
        assert derived.param_dict() == {"interfaces": 5, "boundaries": "1,2"}
        assert spec.param_dict() == {"interfaces": 3}  # original untouched

    def test_label_spelling(self):
        assert SchemeSpec("padding").label == "padding"
        assert SchemeSpec("or", (("interfaces", 5),)).label == "or(interfaces=5)"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="needs a scheme name"):
            SchemeSpec("")

    def test_json_round_trip(self):
        specs = (
            SchemeSpec("padding", (("pad_to", 1576),)),
            SchemeSpec("or", (("interfaces", 3),)),
        )
        assert specs_from_json(specs_to_json(specs)) == specs

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a scheme spec"):
            SchemeSpec.from_dict({"params": {}})
        with pytest.raises(ValueError, match="params must be a mapping"):
            SchemeSpec.from_dict({"scheme": "or", "params": [1, 2]})
        with pytest.raises(ValueError, match="not a scheme spec list"):
            specs_from_json("padding+or")


class TestParseStack:
    def test_single_and_composed(self):
        assert parse_stack("or") == (SchemeSpec("or"),)
        assert parse_stack("padding+or+fh") == (
            SchemeSpec("padding"),
            SchemeSpec("or"),
            SchemeSpec("fh"),
        )

    def test_whitespace_tolerated(self):
        assert parse_stack(" padding + or ") == (
            SchemeSpec("padding"),
            SchemeSpec("or"),
        )

    def test_specs_pass_through(self):
        specs = (SchemeSpec("or"),)
        assert parse_stack(specs) == specs

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError, match="bad scheme composition"):
            parse_stack("padding++or")
        with pytest.raises(ValueError, match="bad scheme composition"):
            parse_stack("")
        with pytest.raises(ValueError, match="at least one scheme"):
            parse_stack(())
        with pytest.raises(TypeError):
            parse_stack((object(),))

    def test_stack_label_round_trip(self):
        assert stack_label(parse_stack("padding+or")) == "padding+or"


class TestCanonicalStack:
    def test_aliases_fold_to_registry_names(self):
        assert stack_label(canonical_stack("OR+FH")) == "or+fh"
        assert canonical_stack("Original") == (SchemeSpec("original"),)

    def test_params_survive_canonicalization(self):
        (spec,) = canonical_stack((SchemeSpec("OR", (("interfaces", 5),)),))
        assert spec == SchemeSpec("or", (("interfaces", 5),))

    def test_unknown_scheme_raises_with_catalog(self):
        with pytest.raises(KeyError, match="registered schemes"):
            canonical_stack("padding+nosuch")
