"""The scheme-level fusion protocol (`Scheme.fused_plan`).

A plan is a *promise* of bit-identity with ``apply``: flow ``f`` of the
plan selects exactly the packets of ``observable_flows[f]`` in order,
the size transform reproduces the defended sizes, accounting matches
stage for stage, and the recorded ``scheme.*`` telemetry is
counter-for-counter identical to the materializing path (the profile
bit-identity tests across serial/parallel runs lean on that).
"""

import numpy as np
import pytest

from repro import obs
from repro.defenses import FusedPlan, FusedStage, PacketPadding
from repro.schemes import SchemeStack, as_scheme, build_stack
from repro.traffic.trace import Trace

FUSABLE = ("original", "fh", "ra", "rr", "or", "modulo", "padding", "pseudonym")


def make_trace(n=800, seed=0, label="uploading"):
    rng = np.random.default_rng(seed)
    return Trace.from_arrays(
        np.sort(rng.uniform(0.0, 45.0, n)),
        rng.integers(1, 1577, n),
        directions=rng.choice([0, 1], n),
        label=label,
    )


def assert_plan_matches_apply(scheme, trace):
    defended = scheme.apply(trace)
    flows = defended.observable_flows
    plan = scheme.fused_plan(trace)
    assert plan is not None
    assert plan.n_flows == len(flows)
    for f, flow in enumerate(flows):
        indices = plan.flow_indices(f)
        sizes = trace.sizes[indices]
        directions = trace.directions[indices]
        if plan.size_transform is not None:
            sizes = plan.size_transform(sizes, directions)
        np.testing.assert_array_equal(trace.times[indices], flow.times)
        np.testing.assert_array_equal(sizes, flow.sizes)
        np.testing.assert_array_equal(directions, flow.directions)
    assert plan.extra_bytes == defended.extra_bytes
    assert plan.handshake_bytes == defended.handshake_bytes
    return plan


class TestPlanFlowParity:
    @pytest.mark.parametrize("name", FUSABLE)
    def test_catalog_schemes(self, name):
        assert_plan_matches_apply(build_stack(name, seed=7), make_trace())

    @pytest.mark.parametrize(
        "composition", ["padding+or", "or+fh", "padding+rr+fh", "pseudonym+ra"]
    )
    def test_stacks(self, composition):
        plan = assert_plan_matches_apply(
            build_stack(composition, seed=7), make_trace()
        )
        assert plan.stack
        assert tuple(s.scheme for s in plan.stages) == tuple(
            composition.split("+")
        )

    def test_empty_trace_flow_counts(self):
        empty = make_trace(n=0)
        # Identity/padding still emit one (empty) flow; partitioning
        # schemes emit none — the plan must mirror both.
        for name in ("original", "padding"):
            assert build_stack(name, seed=7).fused_plan(empty).n_flows == 1
        for name in ("ra", "pseudonym", "padding+or"):
            assert build_stack(name, seed=7).fused_plan(empty).n_flows == 0

    def test_padding_direction_follows_label(self):
        """The padded direction comes from the trace's own label."""
        scheme = as_scheme(PacketPadding())
        for label in ("uploading", "browsing", None):
            assert_plan_matches_apply(scheme, make_trace(label=label, n=300))

    def test_morphing_declines(self):
        assert build_stack("morphing", seed=7).fused_plan(make_trace()) is None

    def test_stack_containing_morphing_declines(self):
        assert build_stack("padding+morphing", seed=7).fused_plan(make_trace()) is None

    def test_nested_stack_declines(self):
        inner = build_stack("padding+or", seed=7)
        outer = SchemeStack([build_stack("fh", seed=7), inner])
        assert outer.fused_plan(make_trace()) is None


class TestPlanTelemetryParity:
    def _scheme_view(self, subprofile):
        counters = {
            key: value
            for key, value in subprofile.metrics.counters.items()
            if key.startswith("scheme")
        }
        histograms = {
            key: dict(buckets)
            for key, buckets in subprofile.metrics.histograms.items()
            if key.startswith("scheme")
        }
        return counters, histograms

    @pytest.mark.parametrize("name", [*FUSABLE, "padding+or+fh", "or+fh"])
    @pytest.mark.parametrize("packets", [0, 800])
    def test_counters_identical_to_apply(self, name, packets):
        trace = make_trace(n=packets)
        scheme = build_stack(name, seed=7)
        _, legacy = obs.captured(lambda: scheme.apply(trace))
        _, fused = obs.captured(lambda: scheme.fused_plan(trace))
        assert self._scheme_view(fused) == self._scheme_view(legacy)

    def test_fused_plan_records_batch_counters(self):
        scheme = build_stack("or", seed=7)
        _, sub = obs.captured(lambda: scheme.fused_plan(make_trace()))
        assert sub.metrics.counters["batch.fused_plans"] == 1
        assert sub.metrics.gauges["batch.plan_bytes"] > 0

    def test_declined_plan_records_nothing(self):
        scheme = build_stack("morphing", seed=7)
        _, sub = obs.captured(lambda: scheme.fused_plan(make_trace()))
        assert not [
            key for key in sub.metrics.counters if key.startswith("scheme")
        ]


class TestFusedPlanMechanics:
    def test_from_assignments_renumbers_in_sorted_order(self):
        plan = FusedPlan.from_assignments(np.array([5, 2, 5, 9, 2]))
        assert plan.n_flows == 3
        np.testing.assert_array_equal(plan.assignments, [1, 0, 1, 2, 0])
        np.testing.assert_array_equal(plan.flow_indices(0), [1, 4])
        np.testing.assert_array_equal(plan.flow_indices(1), [0, 2])
        np.testing.assert_array_equal(plan.flow_indices(2), [3])

    def test_explicit_n_flows_keeps_empty_slots(self):
        plan = FusedPlan.from_assignments(
            np.array([0, 2, 0], dtype=np.int64), n_flows=4
        )
        assert plan.n_flows == 4
        assert [len(plan.flow_indices(f)) for f in range(4)] == [2, 0, 1, 0]

    def test_accounting_properties_sum_stages(self):
        plan = FusedPlan.from_assignments(
            np.zeros(3, dtype=np.int64),
            n_flows=1,
            stages=(
                FusedStage("padding", 1, (1,), 100, 0),
                FusedStage("or", 1, (3,), 0, 392),
            ),
        )
        assert plan.extra_bytes == 100
        assert plan.handshake_bytes == 392
