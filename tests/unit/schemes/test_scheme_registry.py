"""The scheme registry: lookup, parameter typing, legacy equivalence."""

import numpy as np
import pytest

from repro.core.base import Reshaper
from repro.core.schedulers import (
    FrequencyHoppingScheduler,
    OrthogonalReshaper,
    RandomReshaper,
)
from repro.defenses.base import Defense
from repro.schemes import (
    DEFAULT_INTERFACES,
    LEGACY_SCHEME_SPECS,
    SchemeDefinition,
    SchemeSpec,
    all_scheme_definitions,
    build_raw,
    build_scheme,
    get_scheme,
    legacy_scheme_spec,
    register_scheme,
    scheme_names,
)
from repro.schemes.base import DefenseScheme, IdentityScheme, ReshaperScheme
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator


@pytest.fixture(scope="module")
def trace():
    return TrafficGenerator(seed=11).generate(AppType.BITTORRENT, duration=20.0)


class TestLookup:
    def test_catalog_is_registered(self):
        assert set(scheme_names()) >= {
            "original", "fh", "ra", "rr", "or", "modulo",
            "padding", "pseudonym", "morphing",
        }

    def test_lookup_is_case_insensitive_with_aliases(self):
        assert get_scheme("OR") is get_scheme("or")
        assert get_scheme("Original").name == "original"
        assert get_scheme("RoundRobin").name == "rr"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="registered schemes"):
            get_scheme("nosuch")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(
                SchemeDefinition(
                    name="shadow",
                    title="",
                    kind="identity",
                    build=lambda params, seed: IdentityScheme(),
                    aliases=("OR",),
                )
            )
        assert "shadow" not in scheme_names()  # rejected atomically

    def test_definitions_expose_metadata(self):
        for definition in all_scheme_definitions():
            assert definition.kind in ("reshaper", "defense", "identity")
            assert definition.title


class TestParams:
    def test_defaults_resolve(self):
        assert get_scheme("or").resolve_params()["interfaces"] == DEFAULT_INTERFACES

    def test_overrides_are_coerced_to_default_types(self):
        resolved = get_scheme("or").resolve_params({"interfaces": "5"})
        assert resolved["interfaces"] == 5
        assert isinstance(resolved["interfaces"], int)
        resolved = get_scheme("padding").resolve_params({"both_directions": "yes"})
        assert resolved["both_directions"] is True

    def test_unknown_param_raises(self):
        with pytest.raises(KeyError, match="known parameters"):
            get_scheme("or").resolve_params({"windows": 5})

    def test_bad_value_raises_with_param_name(self):
        with pytest.raises(ValueError, match="interfaces"):
            get_scheme("or").resolve_params({"interfaces": "many"})
        with pytest.raises(ValueError, match="both_directions"):
            get_scheme("padding").resolve_params({"both_directions": "maybe"})


class TestBuild:
    def test_build_raw_returns_legacy_objects(self):
        assert isinstance(build_raw("ra", seed=3), RandomReshaper)
        assert isinstance(build_raw("fh"), FrequencyHoppingScheduler)
        assert isinstance(build_raw(SchemeSpec("or")), OrthogonalReshaper)
        assert isinstance(build_raw("padding"), Defense)

    def test_build_scheme_wraps_by_kind(self):
        assert isinstance(build_scheme("original"), IdentityScheme)
        assert isinstance(build_scheme("or"), ReshaperScheme)
        assert isinstance(build_scheme("padding"), DefenseScheme)

    def test_registry_ra_matches_legacy_construction(self, trace):
        ours = build_raw(SchemeSpec("ra", (("interfaces", 3),)), seed=9)
        legacy = RandomReshaper(interfaces=3, seed=9)
        ours.reset(), legacy.reset()
        np.testing.assert_array_equal(
            ours.assign_trace(trace), legacy.assign_trace(trace)
        )

    def test_or_boundaries_param(self):
        reshaper = build_raw(SchemeSpec("or", (("boundaries", "525,1050,1576"),)))
        assert reshaper.boundaries == (525, 1050, 1576)

    def test_fh_ignores_interfaces_like_legacy(self):
        assert build_raw(legacy_scheme_spec("FH", interfaces=5)).interfaces == 3


class TestLegacySpecs:
    def test_display_names_cover_the_table_columns(self):
        assert tuple(d for d, _ in LEGACY_SCHEME_SPECS) == (
            "Original", "FH", "RA", "RR", "OR",
        )

    def test_legacy_spec_stamps_interfaces_on_schedulers(self):
        assert legacy_scheme_spec("OR", 5).param_dict() == {"interfaces": 5}
        assert legacy_scheme_spec("ra").param_dict() == {
            "interfaces": DEFAULT_INTERFACES
        }
        assert legacy_scheme_spec("Original").param_dict() == {}

    def test_build_schemes_delegates_to_registry(self):
        from repro.experiments.scenarios import SCHEME_NAMES, build_schemes

        schemes = build_schemes(interfaces=5, seed=2)
        assert list(schemes) == list(SCHEME_NAMES)
        assert schemes["Original"] is None
        for name in SCHEME_NAMES[1:]:
            assert isinstance(schemes[name], Reshaper)
        assert schemes["OR"].interfaces == 5
