"""SchemeStack semantics: composition, accounting, determinism, RNG hygiene."""

import numpy as np
import pytest

from repro.core.engine import CONFIG_MESSAGE_BYTES
from repro.schemes import (
    SchemeSpec,
    SchemeStack,
    as_scheme,
    build_scheme,
    build_stack,
)
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator


@pytest.fixture(scope="module")
def trace():
    return TrafficGenerator(seed=21).generate(AppType.DOWNLOADING, duration=20.0)


class TestComposition:
    def test_stage_fanout_multiplies(self, trace):
        defended = build_stack("padding+or+fh", seed=0).apply(trace)
        # padding: 1 flow; or: <=3; fh fans each over 3 channel slices.
        assert defended.stages[0].flows == 1
        assert 1 <= defended.stages[1].flows <= 3
        assert defended.stages[2].flows <= 3 * defended.stages[1].flows
        assert len(defended.flows) == defended.stages[-1].flows

    def test_single_scheme_composition_is_the_scheme_itself(self, trace):
        single = build_stack("or", seed=4)
        plain = build_scheme(SchemeSpec("or"), seed=4)
        ours = single.apply(trace)
        reference = plain.apply(trace)
        assert sorted(ours.flows) == sorted(reference.flows)
        for key in ours.flows:
            np.testing.assert_array_equal(
                ours.flows[key].sizes, reference.flows[key].sizes
            )
            np.testing.assert_array_equal(
                ours.flows[key].times, reference.flows[key].times
            )

    def test_reshaper_property_unwraps_single_stage_only(self):
        assert build_stack("or").reshaper is not None
        assert build_stack("padding").reshaper is None
        assert build_stack("padding+or").reshaper is None

    def test_apply_is_deterministic(self, trace):
        stack = build_stack("padding+ra+fh", seed=5)
        first = stack.apply(trace)
        second = stack.apply(trace)
        assert sorted(first.flows) == sorted(second.flows)
        for key in first.flows:
            np.testing.assert_array_equal(
                first.flows[key].times, second.flows[key].times
            )
            np.testing.assert_array_equal(
                first.flows[key].sizes, second.flows[key].sizes
            )

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            SchemeStack([])

    def test_as_scheme_rejects_unknown_types(self):
        with pytest.raises(TypeError, match="cannot interpret"):
            as_scheme(object())


class TestAccounting:
    def test_totals_are_additive_across_stages(self, trace):
        defended = build_stack("padding+morphing+or", seed=1).apply(trace)
        assert defended.extra_bytes == sum(s.extra_bytes for s in defended.stages)
        assert defended.handshake_bytes == sum(
            s.handshake_bytes for s in defended.stages
        )

    def test_reshaping_charges_handshake_not_data_bytes(self, trace):
        defended = build_stack("or", seed=0).apply(trace)
        assert defended.extra_bytes == 0
        assert defended.handshake_bytes == 2 * CONFIG_MESSAGE_BYTES

    def test_second_stage_pays_one_handshake_per_incoming_flow(self, trace):
        defended = build_stack("or+fh", seed=0).apply(trace)
        or_stage, fh_stage = defended.stages
        assert or_stage.handshake_bytes == 2 * CONFIG_MESSAGE_BYTES
        assert fh_stage.handshake_bytes == or_stage.flows * 2 * CONFIG_MESSAGE_BYTES

    def test_padding_overhead_attributed_to_padding_stage(self, trace):
        defended = build_stack("padding+or", seed=0).apply(trace)
        padding_stage, or_stage = defended.stages
        assert padding_stage.scheme == "padding"
        assert padding_stage.extra_bytes > 0
        assert or_stage.extra_bytes == 0
        assert defended.overhead_fraction > 0

    def test_identity_costs_nothing(self, trace):
        defended = build_stack("original").apply(trace)
        assert defended.extra_bytes == 0
        assert defended.handshake_bytes == 0
        assert defended.observable_flows == [trace]


class TestRngHygiene:
    def test_identical_stochastic_stages_do_not_alias(self, trace):
        stack = build_stack("ra+ra", seed=7)
        first, second = (stage.reshaper for stage in stack.stages)
        first.reset()
        second.reset()
        assert not np.array_equal(
            first.assign_trace(trace), second.assign_trace(trace)
        )

    def test_stage_order_changes_streams(self, trace):
        # The padding stage is deterministic, so any divergence between
        # the two stacks' RA assignments comes from the order-salted
        # stage seeds.
        ra_first = build_stack("ra+padding", seed=7)
        ra_second = build_stack("padding+ra", seed=7)
        a = ra_first.stages[0].reshaper
        b = ra_second.stages[1].reshaper
        a.reset()
        b.reset()
        assert not np.array_equal(a.assign_trace(trace), b.assign_trace(trace))

    def test_same_recipe_same_output(self, trace):
        one = build_stack("padding+ra", seed=7).apply(trace)
        two = build_stack("padding+ra", seed=7).apply(trace)
        for key in one.flows:
            np.testing.assert_array_equal(one.flows[key].sizes, two.flows[key].sizes)

    def test_reset_restores_initial_state(self, trace):
        stack = build_stack("ra+rr", seed=3)
        first = stack.apply(trace)
        stack.reset()
        second = stack.apply(trace)
        for key in first.flows:
            np.testing.assert_array_equal(first.flows[key].times, second.flows[key].times)
