"""Tests for packet streams: replay order, merge determinism, validation."""

import numpy as np
import pytest

from repro.stream import PacketEvent, PacketStream
from repro.traffic.trace import Trace, merge_traces


def _trace(times, sizes=None, directions=None, label=None):
    times = list(times)
    return Trace.from_arrays(
        times,
        sizes if sizes is not None else [100] * len(times),
        directions if directions is not None else [0] * len(times),
        label=label,
    )


class TestReplay:
    def test_yields_every_packet_in_order(self):
        trace = _trace([0.0, 0.5, 1.5], sizes=[10, 20, 30], directions=[0, 1, 0])
        events = list(PacketStream.replay(trace, station="a"))
        assert [e.time for e in events] == [0.0, 0.5, 1.5]
        assert [e.size for e in events] == [10, 20, 30]
        assert [e.direction for e in events] == [0, 1, 0]
        assert all(e.station == "a" for e in events)

    def test_label_defaults_to_trace_label(self):
        trace = _trace([0.0], label="browsing")
        (event,) = list(PacketStream.replay(trace))
        assert event.label == "browsing"
        (event,) = list(PacketStream.replay(trace, label="other"))
        assert event.label == "other"

    def test_offset_shifts_timestamps(self):
        trace = _trace([0.0, 1.0])
        events = list(PacketStream.replay(trace, offset=10.0))
        assert [e.time for e in events] == [10.0, 11.0]

    def test_empty_trace_yields_nothing(self):
        assert list(PacketStream.replay(Trace.empty())) == []

    def test_replay_is_lazy(self):
        """The stream is a cursor; consuming one event reads one packet."""
        trace = _trace(np.arange(1000, dtype=float))
        iterator = iter(PacketStream.replay(trace))
        assert next(iterator).time == 0.0  # no full materialization needed


class TestMerge:
    def test_global_time_order_matches_merge_traces(self):
        first = _trace([0.0, 1.0, 4.0], sizes=[1, 2, 3])
        second = _trace([0.5, 1.0, 2.0], sizes=[4, 5, 6])
        merged = list(
            PacketStream.merge(
                [PacketStream.replay(first, "a"), PacketStream.replay(second, "b")]
            )
        )
        reference = merge_traces([first, second])
        assert [e.time for e in merged] == list(reference.times)
        assert [e.size for e in merged] == list(reference.sizes)

    def test_ties_break_by_stream_order(self):
        first = _trace([1.0], sizes=[1])
        second = _trace([1.0], sizes=[2])
        merged = list(
            PacketStream.merge(
                [PacketStream.replay(first, "a"), PacketStream.replay(second, "b")]
            )
        )
        assert [e.station for e in merged] == ["a", "b"]

    def test_many_stations_interleave(self):
        streams = [
            PacketStream.replay(_trace(np.arange(50) * 3.0 + offset), f"s{offset}")
            for offset in range(5)
        ]
        merged = list(PacketStream.merge(streams))
        assert len(merged) == 250
        times = [e.time for e in merged]
        assert times == sorted(times)

    def test_merge_requires_a_stream(self):
        with pytest.raises(ValueError):
            PacketStream.merge([])


class TestValidation:
    def test_backwards_stream_raises(self):
        events = [
            PacketEvent(1.0, 10, 0, "a", None),
            PacketEvent(0.5, 10, 0, "a", None),
        ]
        with pytest.raises(ValueError, match="backwards"):
            list(PacketStream(events))

    def test_equal_timestamps_are_fine(self):
        events = [
            PacketEvent(1.0, 10, 0, "a", None),
            PacketEvent(1.0, 10, 0, "a", None),
        ]
        assert len(list(PacketStream(events))) == 2


class TestFromStore:
    """Replaying a persisted corpus must match the in-memory path exactly."""

    @pytest.fixture(scope="class")
    def stored(self, generator, tmp_path_factory):
        from repro.storage import write_traces
        from repro.traffic.apps import AppType

        traces = [
            generator.generate(app, duration=30.0, session=s)
            for app in (AppType.CHATTING, AppType.DOWNLOADING, AppType.GAMING)
            for s in range(2)
        ]
        store = write_traces(
            str(tmp_path_factory.mktemp("stores") / "replay.store"),
            [
                (trace, {"station": f"sta{index}", "role": "eval"})
                for index, trace in enumerate(traces)
            ],
        )
        return traces, store

    def test_events_identical_to_in_memory_merge(self, stored):
        traces, store = stored
        in_memory = PacketStream.merge(
            [
                PacketStream.replay(trace, station=f"sta{index}", label=trace.label)
                for index, trace in enumerate(traces)
            ]
        )
        assert list(PacketStream.from_store(store)) == list(in_memory)

    def test_feature_vectors_identical_to_in_memory_path(self, stored):
        from repro.stream import StreamingFeaturizer

        traces, store = stored
        off_disk, in_memory = StreamingFeaturizer(5.0), StreamingFeaturizer(5.0)
        disk_windows = [
            w for e in PacketStream.from_store(store) for w in off_disk.push_event(e)
        ] + off_disk.flush()
        streams = [
            PacketStream.replay(trace, station=f"sta{index}", label=trace.label)
            for index, trace in enumerate(traces)
        ]
        ram_windows = [
            w for e in PacketStream.merge(streams) for w in in_memory.push_event(e)
        ] + in_memory.flush()
        assert len(disk_windows) == len(ram_windows) > 0
        for disk, ram in zip(disk_windows, ram_windows):
            assert disk.flow == ram.flow and disk.index == ram.index
            assert np.array_equal(disk.features, ram.features)

    def test_replay_memory_stays_within_open_window_bound(self, stored):
        from repro.analysis.windows import window_edges
        from repro.stream import StreamingFeaturizer

        traces, store = stored
        featurizer = StreamingFeaturizer(5.0)
        for event in PacketStream.from_store(store):
            featurizer.push_event(event)
        featurizer.flush()
        densest = max(
            int(
                np.diff(
                    np.searchsorted(t.times, window_edges(t.times, 5.0))
                ).max()
            )
            for t in traces
            if len(t)
        )
        assert featurizer.peak_open_packets <= densest * len(traces)
        assert featurizer.open_packets == 0

    def test_accepts_path_and_filters(self, stored, tmp_path):
        traces, store = stored
        from_path = PacketStream.from_store(store.path, label="chatting")
        events = list(from_path)
        assert events and all(e.label == "chatting" for e in events)
        assert list(PacketStream.from_store(store, role="train")) == []

    def test_station_defaults_to_synthetic_identity(self, generator, tmp_path):
        from repro.storage import write_traces
        from repro.traffic.apps import AppType

        trace = generator.generate(AppType.CHATTING, duration=10.0)
        store = write_traces(str(tmp_path / "anon.store"), [trace])
        stations = {e.station for e in PacketStream.from_store(store)}
        assert stations == {"chatting/t0"}
