"""Tests for the streaming featurizer: parity, lifecycle, memory bounds."""

import numpy as np
import pytest

from repro.analysis.batch import flow_feature_matrix
from repro.stream import PacketStream, StreamingFeaturizer
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator
from repro.traffic.trace import Trace


def _stream_matrix(trace, window, min_packets=2):
    """Push a whole trace through the featurizer; rows of emitted windows."""
    featurizer = StreamingFeaturizer(window, min_packets)
    closed = []
    for event in PacketStream.replay(trace, station="flow"):
        closed.extend(featurizer.push_event(event))
    closed.extend(featurizer.flush())
    if not closed:
        return np.empty((0, 12)), closed, featurizer
    return np.vstack([w.features for w in closed]), closed, featurizer


class TestBatchParity:
    @pytest.mark.parametrize("app", [AppType.CHATTING, AppType.DOWNLOADING])
    @pytest.mark.parametrize("window", [5.0, 7.3])
    def test_bit_identical_to_batch_oracle(self, app, window):
        trace = TrafficGenerator(seed=11).generate(app, duration=90.0)
        ours, _, _ = _stream_matrix(trace, window)
        assert np.array_equal(ours, flow_feature_matrix(trace, window, 2))

    def test_window_indices_follow_the_grid(self):
        trace = Trace.from_arrays([0.0, 1.0, 12.0, 13.0], [10, 20, 30, 40])
        _, closed, _ = _stream_matrix(trace, 5.0)
        assert [w.index for w in closed] == [0, 2]
        assert [w.start for w in closed] == [0.0, 10.0]
        assert [w.count for w in closed] == [2, 2]

    def test_grid_anchors_at_first_packet(self):
        base = Trace.from_arrays([0.0, 1.0, 6.0], [10, 20, 30])
        shifted = base.shifted(3.7)
        ours, closed, _ = _stream_matrix(shifted, 5.0, min_packets=1)
        assert np.array_equal(ours, flow_feature_matrix(shifted, 5.0, 1))
        assert closed[0].start == pytest.approx(3.7)

    def test_packet_on_the_edge_opens_the_next_window(self):
        trace = Trace.from_arrays([0.0, 1.0, 5.0, 6.0], [10, 20, 30, 40])
        _, closed, _ = _stream_matrix(trace, 5.0)
        assert [w.index for w in closed] == [0, 1]
        assert np.array_equal(
            np.vstack([w.features for w in closed]),
            flow_feature_matrix(trace, 5.0, 2),
        )


class TestLifecycle:
    def test_below_min_packets_windows_are_dropped(self):
        trace = Trace.from_arrays([0.0, 7.0, 8.0], [10, 20, 30])
        _, closed, _ = _stream_matrix(trace, 5.0, min_packets=2)
        assert [w.index for w in closed] == [1]

    def test_single_packet_flow(self):
        trace = Trace.from_arrays([0.5], [100])
        ours, closed, _ = _stream_matrix(trace, 5.0, min_packets=2)
        assert len(closed) == 0 and ours.shape == (0, 12)
        ours, closed, _ = _stream_matrix(trace, 5.0, min_packets=1)
        assert len(closed) == 1
        assert np.array_equal(ours, flow_feature_matrix(trace, 5.0, 1))

    def test_no_events_no_windows(self):
        featurizer = StreamingFeaturizer(5.0)
        assert featurizer.flush() == []
        assert featurizer.open_flows == 0

    def test_flush_forgets_the_flow(self):
        featurizer = StreamingFeaturizer(5.0, min_packets=1)
        featurizer.push("f", 0.0, 10, 0)
        featurizer.flush("f")
        assert featurizer.open_flows == 0
        # A later packet on the same key starts a fresh grid at its time.
        closed = featurizer.push("f", 100.0, 10, 0)
        assert closed == []
        (window,) = featurizer.flush("f")
        assert window.start == 100.0 and window.index == 0

    def test_out_of_order_within_flow_raises(self):
        featurizer = StreamingFeaturizer(5.0)
        featurizer.push("f", 1.0, 10, 0)
        with pytest.raises(ValueError, match="backwards"):
            featurizer.push("f", 0.5, 10, 0)

    def test_label_tracks_most_recent_packet(self):
        featurizer = StreamingFeaturizer(5.0, min_packets=1)
        featurizer.push("f", 0.0, 10, 0, label="browsing")
        featurizer.push("f", 1.0, 10, 0, label="gaming")
        (window,) = featurizer.flush()
        assert window.label == "gaming"

    def test_label_never_leaks_into_the_next_window(self):
        """An all-unlabeled window reports None even after a labeled one."""
        featurizer = StreamingFeaturizer(5.0, min_packets=1)
        featurizer.push("f", 0.0, 10, 0, label="browsing")
        (labeled,) = featurizer.push("f", 6.0, 10, 0, label=None)
        assert labeled.label == "browsing"
        (unlabeled,) = featurizer.flush()
        assert unlabeled.label is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingFeaturizer(0.0)
        with pytest.raises(ValueError):
            StreamingFeaturizer(5.0, min_packets=0)


class TestConcurrentFlows:
    def test_flows_are_windowed_independently(self):
        a = TrafficGenerator(seed=1).generate(AppType.BROWSING, duration=40.0)
        b = TrafficGenerator(seed=2).generate(AppType.VIDEO, duration=40.0)
        featurizer = StreamingFeaturizer(5.0)
        merged = PacketStream.merge(
            [PacketStream.replay(a, "a"), PacketStream.replay(b, "b")]
        )
        closed = []
        for event in merged:
            closed.extend(featurizer.push_event(event))
        closed.extend(featurizer.flush())
        for flow, trace in (("a", a), ("b", b)):
            ours = np.vstack([w.features for w in closed if w.flow == flow])
            assert np.array_equal(ours, flow_feature_matrix(trace, 5.0, 2))

    def test_flush_order_is_first_seen(self):
        featurizer = StreamingFeaturizer(5.0, min_packets=1)
        featurizer.push("b", 0.0, 10, 0)
        featurizer.push("a", 0.1, 10, 0)
        assert [w.flow for w in featurizer.flush()] == ["b", "a"]


class TestMemoryBounds:
    def test_state_is_bounded_by_open_windows_not_trace_length(self):
        """The O(open windows) guarantee the benchmarks assert at scale."""
        trace = TrafficGenerator(seed=3).generate(AppType.DOWNLOADING, duration=120.0)
        featurizer = StreamingFeaturizer(5.0)
        for event in PacketStream.replay(trace, "f"):
            featurizer.push_event(event)
        featurizer.flush()
        edges_counts = np.diff(
            np.searchsorted(trace.times, np.arange(0.0, 125.0, 5.0))
        )
        assert featurizer.peak_open_packets <= edges_counts.max() + 1
        assert featurizer.peak_open_packets < len(trace) / 4
        assert featurizer.open_packets == 0  # everything released

    def test_counters_track_emissions(self):
        trace = TrafficGenerator(seed=4).generate(AppType.CHATTING, duration=60.0)
        featurizer = StreamingFeaturizer(5.0)
        emitted = 0
        for event in PacketStream.replay(trace, "f"):
            emitted += len(featurizer.push_event(event))
        emitted += len(featurizer.flush())
        assert featurizer.windows_emitted == emitted
        assert featurizer.peak_open_flows == 1
