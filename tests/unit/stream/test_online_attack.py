"""Tests for the streaming attacker and the adaptive defender."""

import numpy as np
import pytest

from repro.analysis.attack import AttackPipeline
from repro.analysis.classifiers import GaussianNaiveBayes, KNearestNeighbors
from repro.core.schedulers import OrthogonalReshaper, RoundRobinReshaper
from repro.stream import (
    AdaptiveReshaper,
    OnlineAttack,
    PacketStream,
    WindowPrediction,
    run_arms_race,
)


@pytest.fixture(scope="module")
def trained_pipeline(tiny_corpus):
    pipeline = AttackPipeline(window=5.0, seed=0)
    pipeline.train(tiny_corpus)
    return pipeline


class TestOnlineAttack:
    def test_from_pipeline_requires_training(self):
        with pytest.raises(RuntimeError):
            OnlineAttack.from_pipeline(AttackPipeline(window=5.0))

    def test_learning_mode_requires_online_classifier(self, trained_pipeline):
        with pytest.raises(TypeError, match="partial_fit"):
            OnlineAttack(
                window=5.0,
                classifier=KNearestNeighbors(),
                classes=("a", "b"),
                scaler=trained_pipeline.scaler,
                learn=True,
            )

    def test_predictions_match_batch_pipeline(self, trained_pipeline, tiny_corpus):
        """The parity bar: streaming == evaluate_flows, window for window."""
        label, traces = next(iter(tiny_corpus.items()))
        trace = traces[0]
        attacker = OnlineAttack.from_pipeline(trained_pipeline)
        attacker.consume(PacketStream.replay(trace, station="f", label=label))
        from repro.analysis.batch import flow_feature_matrix

        matrix = flow_feature_matrix(trace, 5.0, 2)
        expected = trained_pipeline.classify_matrix(matrix)
        assert [p.predicted for p in attacker.predictions] == expected

    def test_report_scores_only_labeled_windows(self, trained_pipeline, tiny_corpus):
        trace = tiny_corpus["browsing"][0].with_label(None)
        attacker = OnlineAttack.from_pipeline(trained_pipeline)
        attacker.consume(PacketStream.replay(trace, station="f"))
        assert attacker.predictions  # predictions happen regardless
        assert attacker.report().confusion.total == 0

    def test_confidence_is_a_probability(self, trained_pipeline, tiny_corpus):
        trace = tiny_corpus["video"][0]
        attacker = OnlineAttack.from_pipeline(trained_pipeline)
        attacker.consume(PacketStream.replay(trace, station="f", label="video"))
        assert all(0.0 <= p.confidence <= 1.0 for p in attacker.predictions)

    def test_cold_learner_trains_before_predicting(self, tiny_corpus):
        from repro.analysis.scaler import StandardScaler
        from repro.analysis.batch import flow_feature_matrix

        classes = tuple(sorted(tiny_corpus))
        scaler = StandardScaler().fit(
            np.vstack(
                [
                    flow_feature_matrix(traces[0], 5.0, 2)
                    for traces in tiny_corpus.values()
                ]
            )
        )
        attacker = OnlineAttack(
            window=5.0,
            classifier=GaussianNaiveBayes(),
            classes=classes,
            scaler=scaler,
            learn=True,
        )
        for label in classes:
            attacker.consume(
                PacketStream.replay(
                    tiny_corpus[label][0], station=f"{label}/f", label=label
                )
            )
        # The very first batch trains silently; afterwards predictions flow.
        assert attacker.windows_trained > 0
        assert attacker.predictions
        assert attacker.report().confusion.total == len(attacker.predictions)

    def test_finish_flow_releases_state_and_scores_the_window(
        self, trained_pipeline, tiny_corpus
    ):
        attacker = OnlineAttack.from_pipeline(trained_pipeline)
        trace = tiny_corpus["chatting"][0]
        for event in PacketStream.replay(trace, station="f", label="chatting"):
            attacker.observe_event(event)
        assert attacker.featurizer.open_flows == 1
        early = attacker.finish_flow("f")
        assert attacker.featurizer.open_flows == 0
        assert attacker.featurizer.open_packets == 0
        # Flushing a flow early emits the same window an end-of-capture
        # flush would have; predictions are scored either way.
        assert early
        assert attacker.predictions[-len(early):] == early
        assert attacker.finish_flow("f") == []  # idempotent

    def test_frozen_mode_never_mutates_the_classifier(self, trained_pipeline, tiny_corpus):
        classifier = trained_pipeline.classifier
        state_before = [p.copy() for p in vars(classifier).values() if isinstance(p, np.ndarray)]
        attacker = OnlineAttack.from_pipeline(trained_pipeline)
        attacker.consume(
            PacketStream.replay(tiny_corpus["gaming"][0], station="f", label="gaming")
        )
        state_after = [p for p in vars(classifier).values() if isinstance(p, np.ndarray)]
        for before, after in zip(state_before, state_after):
            np.testing.assert_array_equal(before, after)


class TestAdaptiveReshaper:
    def _confident(self, flow="sta/e0/i0", start=50.0):
        return WindowPrediction(
            flow=flow, index=3, start=start,
            true_label="video", predicted="video", confidence=0.99,
        )

    def test_reallocates_on_confident_recognition(self):
        defender = AdaptiveReshaper(RoundRobinReshaper(3), confidence_threshold=0.9)
        addresses = list(defender.virtual_addresses)
        assert defender.notify(self._confident())
        assert defender.epoch == 1
        assert defender.reallocations == 1
        assert defender.virtual_addresses != addresses

    def test_ignores_misses_and_low_confidence(self):
        defender = AdaptiveReshaper(RoundRobinReshaper(3), confidence_threshold=0.9)
        wrong = self._confident()._replace(predicted="gaming")
        timid = self._confident()._replace(confidence=0.5)
        unlabeled = self._confident()._replace(true_label=None)
        assert not defender.notify(wrong)
        assert not defender.notify(timid)
        assert not defender.notify(unlabeled)
        assert defender.epoch == 0

    def test_cooldown_rate_limits(self):
        defender = AdaptiveReshaper(
            RoundRobinReshaper(3), confidence_threshold=0.9, cooldown=30.0
        )
        assert defender.notify(self._confident(start=50.0))
        assert not defender.notify(self._confident(start=60.0))
        assert defender.notify(self._confident(start=85.0))
        assert defender.reallocations == 2

    def test_assign_names_epoch_and_interface(self):
        defender = AdaptiveReshaper(RoundRobinReshaper(2))
        assert defender.assign(0.0, 100, 0) == (0, 0)
        assert defender.assign(0.1, 100, 0) == (0, 1)
        defender.notify(self._confident())
        epoch, _ = defender.assign(60.0, 100, 0)
        assert epoch == 1
        assert defender.flow_key("sta", epoch, 0) == "sta/e1/i0"

    def test_overhead_counts_handshakes(self):
        defender = AdaptiveReshaper(OrthogonalReshaper.paper_default())
        base = defender.config_overhead_bytes
        defender.notify(self._confident())
        assert defender.config_overhead_bytes == base * 2

    def test_reset_restores_the_initial_state(self):
        defender = AdaptiveReshaper(RoundRobinReshaper(3), seed=7)
        initial = list(defender.virtual_addresses)
        defender.notify(self._confident())
        defender.reset()
        assert defender.epoch == 0
        assert defender.virtual_addresses == initial

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveReshaper(RoundRobinReshaper(3), confidence_threshold=0.0)
        with pytest.raises(ValueError):
            AdaptiveReshaper(RoundRobinReshaper(3), cooldown=-1.0)


class TestArmsRace:
    def test_static_defender_never_reallocates(self, trained_pipeline, tiny_corpus):
        outcome = run_arms_race(
            {label: traces[:1] for label, traces in tiny_corpus.items()},
            trained_pipeline,
            lambda: OrthogonalReshaper.paper_default(),
            adaptive=False,
        )
        assert outcome.reallocations == 0
        assert outcome.windows > 0
        assert outcome.report.confusion.total == outcome.windows

    def test_adaptive_defender_fragments_flows(self, trained_pipeline, tiny_corpus):
        evaluation = {label: traces[:1] for label, traces in tiny_corpus.items()}
        static = run_arms_race(
            evaluation, trained_pipeline,
            lambda: OrthogonalReshaper.paper_default(), adaptive=False,
        )
        adaptive = run_arms_race(
            evaluation, trained_pipeline,
            lambda: OrthogonalReshaper.paper_default(),
            adaptive=True, confidence_threshold=0.5, cooldown=5.0,
        )
        assert adaptive.reallocations > 0
        assert adaptive.flows_observed > static.flows_observed
        assert adaptive.config_overhead_bytes > static.config_overhead_bytes

    def test_deterministic_in_the_seed(self, trained_pipeline, tiny_corpus):
        evaluation = {label: traces[:1] for label, traces in tiny_corpus.items()}
        kwargs = dict(
            pipeline=trained_pipeline,
            base_factory=lambda: OrthogonalReshaper.paper_default(),
            adaptive=True, confidence_threshold=0.5, seed=3,
        )
        first = run_arms_race(evaluation, **kwargs)
        second = run_arms_race(evaluation, **kwargs)
        assert first.reallocations == second.reallocations
        np.testing.assert_array_equal(
            first.report.confusion.matrix, second.report.confusion.matrix
        )
