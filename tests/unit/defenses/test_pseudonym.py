"""Tests for the pseudonym baseline."""

import numpy as np
import pytest

from repro.defenses.pseudonym import PseudonymDefense
from repro.traffic.trace import Trace


class TestPseudonymDefense:
    def test_splits_by_epoch(self):
        trace = Trace.from_arrays(np.arange(10) * 100.0, np.full(10, 100))
        defended = PseudonymDefense(epoch=300.0).apply(trace)
        assert len(defended.flows) == 4  # 1000s span / 300s epochs
        assert sum(len(f) for f in defended.flows.values()) == 10

    def test_no_bytes_added(self):
        trace = Trace.from_arrays(np.arange(5) * 10.0, np.full(5, 100))
        defended = PseudonymDefense(epoch=20.0).apply(trace)
        assert defended.extra_bytes == 0

    def test_features_unchanged_within_epoch(self):
        # The paper's criticism: packets under one pseudonym stay linkable
        # and keep the original features.
        trace = Trace.from_arrays(np.arange(20) * 1.0, np.full(20, 500))
        defended = PseudonymDefense(epoch=1000.0).apply(trace)
        [flow] = defended.observable_flows
        assert np.array_equal(flow.sizes, trace.sizes)
        assert np.array_equal(flow.times, trace.times)

    def test_empty_trace(self):
        defended = PseudonymDefense().apply(Trace.empty())
        assert defended.flows == {}

    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            PseudonymDefense(epoch=0.0)
