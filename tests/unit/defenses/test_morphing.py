"""Tests for traffic morphing."""

import numpy as np
import pytest

from repro.defenses.morphing import (
    TrafficMorphing,
    monotone_coupling,
    morphing_matrix_lp,
)
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator
from repro.traffic.packet import DOWNLINK
from repro.traffic.trace import Trace


class TestMonotoneCoupling:
    def test_marginals_match(self):
        rng = np.random.default_rng(0)
        source = rng.choice([100, 500, 1500], 4000, p=[0.5, 0.3, 0.2])
        target = rng.choice([200, 900, 1576], 4000, p=[0.2, 0.3, 0.5])
        coupling = monotone_coupling(source, target)
        # Row sums reproduce the source distribution, column sums the target.
        p = coupling.plan.sum(axis=1)
        q = coupling.plan.sum(axis=0)
        assert np.allclose(p.sum(), 1.0)
        assert np.allclose(q.sum(), 1.0)
        assert p[0] == pytest.approx(0.5, abs=0.03)
        assert q[2] == pytest.approx(0.5, abs=0.03)

    def test_identity_when_distributions_equal(self):
        sizes = np.array([100] * 50 + [1500] * 50)
        coupling = monotone_coupling(sizes, sizes)
        conditional = coupling.conditional()
        assert np.allclose(np.diag(conditional), 1.0)

    def test_expected_mean(self):
        source = np.array([100] * 100)
        target = np.array([500] * 100)
        coupling = monotone_coupling(source, target)
        assert coupling.expected_target_mean() == pytest.approx(500.0)

    def test_sample_targets_follow_plan(self, rng):
        source = np.array([100] * 1000)
        target = np.array([300] * 500 + [700] * 500)
        coupling = monotone_coupling(source, target)
        out = coupling.sample_targets(np.full(2000, 100), rng)
        assert set(out.tolist()) == {300, 700}
        assert abs((out == 300).mean() - 0.5) < 0.05


class TestMorphingLp:
    def test_lp_matches_monotone_cost_on_line(self):
        # On the real line with |.| cost, the comonotone coupling is
        # optimal, so the LP value must equal its transport cost.
        source_support = np.array([100, 500, 1500])
        target_support = np.array([200, 900, 1576])
        p = np.array([0.5, 0.3, 0.2])
        q = np.array([0.2, 0.3, 0.5])
        plan = morphing_matrix_lp(p, q, source_support, target_support)
        lp_cost = (
            plan * np.abs(target_support[None, :] - source_support[:, None])
        ).sum()

        source = np.repeat(source_support, (p * 1000).astype(int))
        target = np.repeat(target_support, (q * 1000).astype(int))
        monotone_cost = monotone_coupling(source, target).transport_cost()
        assert lp_cost == pytest.approx(monotone_cost, rel=0.02)

    def test_lp_marginals(self):
        p = np.array([0.6, 0.4])
        q = np.array([0.3, 0.7])
        plan = morphing_matrix_lp(p, q, np.array([100, 800]), np.array([200, 1500]))
        assert np.allclose(plan.sum(axis=1), p, atol=1e-8)
        assert np.allclose(plan.sum(axis=0), q, atol=1e-8)

    def test_lp_rejects_bad_marginals(self):
        with pytest.raises(ValueError):
            morphing_matrix_lp(
                np.array([0.6, 0.6]), np.array([0.5, 0.5]),
                np.array([1, 2]), np.array([1, 2]),
            )


class TestTrafficMorphing:
    @pytest.fixture(scope="class")
    def traces(self):
        generator = TrafficGenerator(seed=21)
        return {
            "chatting": generator.generate(AppType.CHATTING, 90.0),
            "gaming": generator.generate(AppType.GAMING, 90.0),
            "video": generator.generate(AppType.VIDEO, 60.0),
            "downloading": generator.generate(AppType.DOWNLOADING, 30.0),
        }

    def test_morphed_distribution_moves_toward_target(self, traces):
        morpher = TrafficMorphing(target_trace=traces["gaming"], seed=0)
        defended = morpher.apply(traces["chatting"])
        flow = defended.observable_flows[0]
        source_mean = traces["chatting"].direction_view(DOWNLINK).sizes.mean()
        target_mean = traces["gaming"].direction_view(DOWNLINK).sizes.mean()
        morphed_mean = flow.direction_view(DOWNLINK).sizes.mean()
        assert abs(morphed_mean - target_mean) < abs(source_mean - target_mean)

    def test_overhead_positive_when_growing(self, traces):
        # chat -> gaming grows packets: overhead roughly the mean ratio.
        morpher = TrafficMorphing(target_trace=traces["gaming"], seed=0)
        defended = morpher.apply(traces["chatting"])
        assert defended.extra_bytes > 0

    def test_video_to_downloading_is_cheap(self, traces):
        # Table VI: video -> downloading costs ~1.8%.
        morpher = TrafficMorphing(target_trace=traces["downloading"], seed=0)
        defended = morpher.apply(traces["video"])
        down_bytes = traces["video"].direction_view(DOWNLINK).sizes.sum()
        overhead = defended.extra_bytes / down_bytes
        assert overhead < 0.10

    def test_shrinking_fragments_packets(self, traces):
        # gaming -> chatting must shrink some packets -> more packets out.
        morpher = TrafficMorphing(target_trace=traces["chatting"], seed=0)
        defended = morpher.apply(traces["gaming"])
        flow = defended.observable_flows[0]
        assert len(flow) >= len(traces["gaming"])

    def test_empty_trace_passthrough(self):
        morpher = TrafficMorphing(target_trace=Trace.empty("gaming"), seed=0)
        trace = Trace.from_arrays([0.0], [500], label="chatting")
        defended = morpher.apply(trace)
        assert defended.extra_bytes == 0

    def test_paper_morph_pairs(self):
        pairs = TrafficMorphing.paper_morph_pairs()
        assert pairs["chatting"] == "gaming"
        assert pairs["video"] == "downloading"
        assert "downloading" not in pairs
        assert "uploading" not in pairs
