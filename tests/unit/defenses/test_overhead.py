"""Tests for overhead accounting."""

import pytest

from repro.defenses.base import DefendedTraffic
from repro.defenses.overhead import byte_overhead, overhead_percent
from repro.traffic.trace import Trace


def _defended(extra: int) -> DefendedTraffic:
    trace = Trace.from_arrays([0.0, 1.0], [400, 600])
    return DefendedTraffic(original=trace, flows={0: trace}, extra_bytes=extra)


class TestOverhead:
    def test_byte_overhead(self):
        assert byte_overhead(_defended(123)) == 123

    def test_percent(self):
        assert overhead_percent(_defended(500)) == pytest.approx(50.0)

    def test_zero_for_reshaping_style_defense(self):
        assert overhead_percent(_defended(0)) == 0.0

    def test_empty_original(self):
        defended = DefendedTraffic(Trace.empty(), flows={}, extra_bytes=10)
        assert overhead_percent(defended) == 0.0

    def test_defended_bytes_sums_flows(self):
        defended = _defended(0)
        assert defended.defended_bytes == 1000
