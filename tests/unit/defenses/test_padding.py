"""Tests for packet padding."""

import numpy as np
import pytest

from repro.defenses.padding import PacketPadding, data_direction_of
from repro.traffic.apps import AppType
from repro.traffic.packet import DOWNLINK, UPLINK
from repro.traffic.trace import Trace


class TestDataDirection:
    def test_uploading_is_uplink(self):
        assert data_direction_of(AppType.UPLOADING) is UPLINK
        assert data_direction_of("uploading") is UPLINK

    def test_everything_else_is_downlink(self):
        for app in AppType:
            if app is AppType.UPLOADING:
                continue
            assert data_direction_of(app) is DOWNLINK

    def test_unknown_defaults_to_downlink(self):
        assert data_direction_of(None) is DOWNLINK
        assert data_direction_of("mystery-app") is DOWNLINK


class TestPadding:
    def _trace(self, label="browsing"):
        return Trace.from_arrays(
            times=[0.0, 0.1, 0.2, 0.3],
            sizes=[100, 1500, 200, 1576],
            directions=[0, 0, 1, 1],
            label=label,
        )

    def test_pads_data_direction_to_max(self):
        defended = PacketPadding().apply(self._trace())
        flow = defended.observable_flows[0]
        down = flow.direction_view(DOWNLINK)
        assert set(down.sizes.tolist()) == {1576}

    def test_leaves_other_direction_alone(self):
        defended = PacketPadding().apply(self._trace())
        up = defended.observable_flows[0].direction_view(UPLINK)
        assert list(up.sizes) == [200, 1576]

    def test_uploading_pads_uplink(self):
        defended = PacketPadding().apply(self._trace(label="uploading"))
        up = defended.observable_flows[0].direction_view(UPLINK)
        assert set(up.sizes.tolist()) == {1576}

    def test_pad_both_directions(self):
        defended = PacketPadding(pad_both_directions=True).apply(self._trace())
        assert set(defended.observable_flows[0].sizes.tolist()) == {1576}

    def test_never_shrinks(self):
        trace = self._trace()
        defended = PacketPadding(pad_to=500).apply(trace)
        flow = defended.observable_flows[0]
        assert np.all(flow.sizes >= trace.sizes)

    def test_overhead_accounting(self):
        trace = self._trace()
        defended = PacketPadding().apply(trace)
        expected_extra = (1576 - 100) + (1576 - 1500)
        assert defended.extra_bytes == expected_extra
        assert defended.overhead_fraction == pytest.approx(
            expected_extra / trace.total_bytes
        )

    def test_timing_unchanged(self):
        trace = self._trace()
        flow = PacketPadding().apply(trace).observable_flows[0]
        assert np.array_equal(flow.times, trace.times)

    def test_rejects_bad_pad_to(self):
        with pytest.raises(ValueError):
            PacketPadding(pad_to=0)

    def test_chatting_overhead_matches_table6_magnitude(self, generator):
        # Table VI: chatting padding overhead ~485% (1576/269 - 1).
        from repro.traffic.apps import AppType

        trace = generator.generate(AppType.CHATTING, 120.0)
        defended = PacketPadding().apply(trace)
        down = trace.direction_view(DOWNLINK)
        expected = 1576 / down.sizes.mean() - 1
        measured = defended.extra_bytes / down.sizes.sum()
        assert measured == pytest.approx(expected, rel=0.01)
