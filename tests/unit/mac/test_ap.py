"""Tests for the AP data plane."""

import pytest

from repro.core.schedulers import OrthogonalReshaper
from repro.mac.addresses import MacAddress
from repro.mac.ap import AccessPointDataPlane
from repro.mac.frames import Dot11Frame

AP = MacAddress.parse("00:aa:00:aa:00:aa")
CLIENT = MacAddress.parse("00:11:22:33:44:55")
VIRTUALS = [MacAddress(0x020000000010 + i) for i in range(3)]


@pytest.fixture
def data_plane():
    plane = AccessPointDataPlane(address=AP)
    plane.register_client(CLIENT, VIRTUALS, scheduler=OrthogonalReshaper.paper_default())
    return plane


class TestRegistration:
    def test_uses_virtual_interfaces(self, data_plane):
        assert data_plane.uses_virtual_interfaces(CLIENT)
        assert not data_plane.uses_virtual_interfaces(AP)

    def test_deregister(self, data_plane):
        freed = data_plane.deregister_client(CLIENT)
        assert set(freed) == set(VIRTUALS)
        assert not data_plane.uses_virtual_interfaces(CLIENT)


class TestUplink:
    def test_translates_virtual_source(self, data_plane):
        frame = Dot11Frame(src=VIRTUALS[2], dst=AP, payload_size=10)
        forwarded = data_plane.receive_uplink(frame)
        assert forwarded.src == CLIENT
        assert data_plane.forwarded_to_ds[-1].src == CLIENT

    def test_plain_clients_pass_through(self, data_plane):
        other = MacAddress.parse("00:22:22:22:22:22")
        frame = Dot11Frame(src=other, dst=AP, payload_size=10)
        assert data_plane.receive_uplink(frame).src == other


class TestDownlink:
    def test_small_packet_goes_to_iface0(self, data_plane):
        frame = Dot11Frame(src=AP, dst=CLIENT, payload_size=100)
        assert data_plane.transmit_downlink(frame).dst == VIRTUALS[0]

    def test_large_packet_goes_to_iface2(self, data_plane):
        frame = Dot11Frame(src=AP, dst=CLIENT, payload_size=1530)
        assert data_plane.transmit_downlink(frame).dst == VIRTUALS[2]

    def test_unregistered_destination_unchanged(self, data_plane):
        other = MacAddress.parse("00:22:22:22:22:22")
        frame = Dot11Frame(src=AP, dst=other, payload_size=100)
        assert data_plane.transmit_downlink(frame).dst == other

    def test_no_scheduler_uses_iface0(self):
        plane = AccessPointDataPlane(address=AP)
        plane.register_client(CLIENT, VIRTUALS)
        frame = Dot11Frame(src=AP, dst=CLIENT, payload_size=1500)
        assert plane.transmit_downlink(frame).dst == VIRTUALS[0]
