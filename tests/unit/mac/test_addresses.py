"""Tests for MAC addresses and the paper's privacy arithmetic."""


import pytest

from repro.mac.addresses import (
    MacAddress,
    collision_probability,
    privacy_entropy_bits,
    random_mac,
)


class TestMacAddress:
    def test_parse_roundtrip(self):
        address = MacAddress.parse("aa:bb:cc:dd:ee:ff")
        assert str(address) == "aa:bb:cc:dd:ee:ff"

    def test_parse_rejects_malformed(self):
        for bad in ("aa:bb:cc", "zz:bb:cc:dd:ee:ff", "aabbccddeeff", "1:2:3:4:5:300"):
            with pytest.raises(ValueError):
                MacAddress.parse(bad)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)

    def test_to_bytes(self):
        assert MacAddress.parse("00:00:00:00:00:01").to_bytes() == b"\x00" * 5 + b"\x01"

    def test_ordering_and_hash(self):
        a, b = MacAddress(1), MacAddress(2)
        assert a < b
        assert len({a, b, MacAddress(1)}) == 2

    def test_flag_bits(self):
        local = MacAddress.parse("02:00:00:00:00:00")
        multicast = MacAddress.parse("01:00:00:00:00:00")
        assert local.is_locally_administered
        assert multicast.is_multicast


class TestRandomMac:
    def test_unicast_always(self, rng):
        for _ in range(50):
            assert not random_mac(rng).is_multicast

    def test_locally_administered_flag(self, rng):
        assert random_mac(rng, locally_administered=True).is_locally_administered
        assert not random_mac(rng, locally_administered=False).is_locally_administered

    def test_draws_are_diverse(self, rng):
        draws = {random_mac(rng) for _ in range(100)}
        assert len(draws) == 100


class TestCollisionProbability:
    def test_zero_for_small_counts(self):
        assert collision_probability(0) == 0.0
        assert collision_probability(1) == 0.0

    def test_birthday_bound_small_space(self):
        # 23 people in a 365-day year: the classic ~50.7%.
        p = collision_probability(23, space_bits=0) if False else None
        # Use an 8-bit space (256 values): 20 draws -> p ~ 53%.
        p = collision_probability(20, space_bits=8)
        assert 0.4 < p < 0.6

    def test_monotone_in_n(self):
        values = [collision_probability(n, space_bits=16) for n in (2, 10, 100, 400)]
        assert values == sorted(values)

    def test_tiny_for_realistic_wlan(self):
        # A WLAN with 1000 virtual addresses in the 48-bit space.
        assert collision_probability(1000) < 1e-8

    def test_saturates_at_one(self):
        assert collision_probability(10**9, space_bits=16) == pytest.approx(1.0)


class TestPrivacyEntropy:
    def test_log2(self):
        assert privacy_entropy_bits(8) == pytest.approx(3.0)

    def test_increases_with_interfaces(self):
        # Sec. III-C-3: more virtual addresses -> more privacy entropy.
        assert privacy_entropy_bits(30) > privacy_entropy_bits(10)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            privacy_entropy_bits(0)
