"""Tests for MAC address translation (Fig. 3)."""

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.frames import Dot11Frame
from repro.mac.translation import TranslationTable

PHYSICAL = MacAddress.parse("00:11:22:33:44:55")
AP = MacAddress.parse("00:aa:00:aa:00:aa")
V1 = MacAddress.parse("02:00:00:00:00:01")
V2 = MacAddress.parse("02:00:00:00:00:02")


@pytest.fixture
def table():
    t = TranslationTable()
    t.register(PHYSICAL, [V1, V2])
    return t


class TestBindings:
    def test_lookup_both_ways(self, table):
        assert table.physical_of(V1) == PHYSICAL
        assert table.virtuals_of(PHYSICAL) == [V1, V2]

    def test_is_virtual(self, table):
        assert table.is_virtual(V1)
        assert not table.is_virtual(PHYSICAL)

    def test_has_client(self, table):
        assert table.has_client(PHYSICAL)
        assert not table.has_client(AP)

    def test_rebinding_to_other_client_rejected(self, table):
        other = MacAddress.parse("00:99:99:99:99:99")
        with pytest.raises(ValueError, match="already bound"):
            table.register(other, [V1])

    def test_rebinding_same_client_is_idempotent(self, table):
        table.register(PHYSICAL, [V1])
        assert table.virtuals_of(PHYSICAL) == [V1, V2]

    def test_unregister_frees_everything(self, table):
        freed = table.unregister(PHYSICAL)
        assert set(freed) == {V1, V2}
        assert table.physical_of(V1) is None
        assert not table.has_client(PHYSICAL)


class TestFrameTranslation:
    def test_uplink_rewrites_virtual_source(self, table):
        frame = Dot11Frame(src=V2, dst=AP, payload_size=10)
        assert table.translate_uplink(frame).src == PHYSICAL

    def test_uplink_passthrough_for_unknown(self, table):
        frame = Dot11Frame(src=AP, dst=PHYSICAL, payload_size=10)
        assert table.translate_uplink(frame).src == AP

    def test_downlink_picks_interface(self, table):
        frame = Dot11Frame(src=AP, dst=PHYSICAL, payload_size=10)
        assert table.translate_downlink(frame, 1).dst == V2

    def test_downlink_out_of_range_interface(self, table):
        frame = Dot11Frame(src=AP, dst=PHYSICAL, payload_size=10)
        with pytest.raises(IndexError):
            table.translate_downlink(frame, 5)

    def test_downlink_passthrough_for_unknown(self, table):
        other = MacAddress.parse("00:99:99:99:99:99")
        frame = Dot11Frame(src=AP, dst=other, payload_size=10)
        assert table.translate_downlink(frame, 0).dst == other

    def test_restore_at_client(self, table):
        frame = Dot11Frame(src=AP, dst=V1, payload_size=10)
        assert table.restore_at_client(frame).dst == PHYSICAL

    def test_uplink_then_restore_roundtrip(self, table):
        # Client -> AP -> (DS) -> AP -> client keeps upper layers ignorant.
        uplink = Dot11Frame(src=V1, dst=AP, payload_size=10)
        at_ds = table.translate_uplink(uplink)
        downlink = Dot11Frame(src=AP, dst=at_ds.src, payload_size=10)
        on_air = table.translate_downlink(downlink, 0)
        delivered = table.restore_at_client(on_air)
        assert delivered.dst == PHYSICAL
