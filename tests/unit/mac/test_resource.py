"""Tests for the AP resource manager."""

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.pool import AddressPool
from repro.mac.resource import ResourceManager


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def manager(rng, clock):
    return ResourceManager(
        AddressPool(rng),
        budget=10,
        max_per_client=4,
        min_per_client=2,
        idle_timeout=100.0,
        clock=clock,
    )


def _mac(index: int) -> MacAddress:
    return MacAddress(0x001100000000 + index)


class TestAdmission:
    def test_grant_respects_request_and_cap(self, manager):
        grant = manager.admit(_mac(1), requested=3)
        assert grant is not None and grant.interfaces == 3
        grant = manager.admit(_mac(2), requested=99)
        assert grant.interfaces == 4  # per-client cap

    def test_budget_enforced(self, manager):
        manager.admit(_mac(1), requested=4)
        manager.admit(_mac(2), requested=4)
        # 8 of 10 used; next client squeezed to the remaining 2.
        grant = manager.admit(_mac(3), requested=4)
        assert grant.interfaces == 2
        # Budget exhausted: refusal.
        assert manager.admit(_mac(4), requested=2) is None
        assert manager.headroom == 0

    def test_duplicate_admission_rejected(self, manager):
        manager.admit(_mac(1), requested=2)
        with pytest.raises(ValueError):
            manager.admit(_mac(1), requested=2)

    def test_bad_request_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.decide_grant(0)


class TestLifecycle:
    def test_release_returns_addresses(self, manager):
        manager.admit(_mac(1), requested=3)
        assert manager.release(_mac(1)) == 3
        assert manager.allocated == 0

    def test_release_unknown_is_zero(self, manager):
        assert manager.release(_mac(9)) == 0

    def test_idle_reclamation(self, manager, clock):
        manager.admit(_mac(1), requested=2)
        manager.admit(_mac(2), requested=2)
        clock.advance(50.0)
        manager.touch(_mac(2))
        clock.advance(80.0)  # client 1 idle for 130 s, client 2 for 80 s
        expired = manager.reclaim_idle()
        assert expired == [_mac(1)]
        assert manager.grant_of(_mac(1)) is None
        assert manager.grant_of(_mac(2)) is not None


class TestRebalance:
    def test_tops_up_underserved_clients(self, manager):
        # Client 1 wanted 4 but the AP was busy; after client 2 leaves,
        # rebalance tops client 1 back up.
        grant = manager.admit(_mac(1), requested=4)
        assert grant.interfaces == 4
        manager.admit(_mac(2), requested=4)
        manager.admit(_mac(3), requested=4)  # squeezed to 2
        assert manager.grant_of(_mac(3)).interfaces == 2
        manager.release(_mac(2))
        additions = manager.rebalance()
        assert additions.get(_mac(3)) == 2
        assert manager.grant_of(_mac(3)).interfaces == 4

    def test_rebalance_without_headroom_is_noop(self, manager):
        manager.admit(_mac(1), requested=4)
        manager.admit(_mac(2), requested=4)
        manager.admit(_mac(3), requested=4)
        assert manager.rebalance() == {}
