"""Tests for the VAP set."""

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.frames import Dot11Frame
from repro.mac.virtual_iface import VirtualInterfaceSet

PHYSICAL = MacAddress.parse("00:11:22:33:44:55")
AP = MacAddress.parse("00:aa:00:aa:00:aa")
ADDRESSES = [MacAddress(0x020000000001 + i) for i in range(3)]


@pytest.fixture
def vaps():
    return VirtualInterfaceSet.configure(PHYSICAL, ADDRESSES, channel=6)


class TestConfiguration:
    def test_interface_count(self, vaps):
        assert len(vaps) == 3

    def test_addresses_in_order(self, vaps):
        assert vaps.addresses == ADDRESSES

    def test_requires_addresses(self):
        with pytest.raises(ValueError):
            VirtualInterfaceSet.configure(PHYSICAL, [])

    def test_same_channel_for_all(self, vaps):
        # Sec. III-A: virtual interfaces "work in the same channel".
        assert all(iface.channel == 6 for iface in vaps.interfaces)


class TestActivation:
    def test_single_active_adapter(self, vaps):
        vaps.activate(2)
        assert vaps.active.index == 2

    def test_activate_out_of_range(self, vaps):
        with pytest.raises(IndexError):
            vaps.activate(3)


class TestTransmit:
    def test_encapsulate_stamps_vap_address(self, vaps):
        frame = vaps.encapsulate(1, AP, payload_size=100, time=2.0)
        assert frame.src == ADDRESSES[1]
        assert frame.dst == AP
        assert frame.channel == 6

    def test_encapsulate_activates_and_counts(self, vaps):
        vaps.encapsulate(2, AP, payload_size=100, time=0.0)
        assert vaps.active.index == 2
        assert vaps.interfaces[2].tx_frames == 1
        assert vaps.interfaces[2].tx_bytes > 100


class TestReceive:
    def test_accepts_any_vap_address(self, vaps):
        frame = Dot11Frame(src=AP, dst=ADDRESSES[2], payload_size=50)
        iface = vaps.accept(frame)
        assert iface is not None and iface.index == 2
        assert iface.rx_frames == 1

    def test_accepts_physical_address(self, vaps):
        frame = Dot11Frame(src=AP, dst=PHYSICAL, payload_size=50)
        assert vaps.accept(frame) is not None

    def test_ignores_other_destinations(self, vaps):
        other = MacAddress.parse("00:99:99:99:99:99")
        frame = Dot11Frame(src=AP, dst=other, payload_size=50)
        assert vaps.accept(frame) is None

    def test_owns(self, vaps):
        assert vaps.owns(ADDRESSES[0])
        assert not vaps.owns(AP)
