"""Tests for the 802.11 frame model."""

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.frames import FRAME_HEADER_BYTES, Dot11Frame, FrameType, frame_overhead

SRC = MacAddress.parse("02:00:00:00:00:01")
DST = MacAddress.parse("02:00:00:00:00:02")


class TestOverhead:
    def test_data_overhead(self):
        assert frame_overhead(FrameType.DATA) == FRAME_HEADER_BYTES

    def test_control_frames_are_light(self):
        assert frame_overhead(FrameType.CONTROL) < FRAME_HEADER_BYTES

    def test_mtu_frame_is_1576(self):
        # 1500-byte MTU payload + LLC/MAC overhead lands in the paper's
        # observed maximum band.
        frame = Dot11Frame(src=SRC, dst=DST, payload_size=1540)
        assert frame.size == 1576


class TestDot11Frame:
    def test_size_includes_header(self):
        frame = Dot11Frame(src=SRC, dst=DST, payload_size=100)
        assert frame.size == 100 + FRAME_HEADER_BYTES

    def test_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            Dot11Frame(src=SRC, dst=DST, payload_size=-1)

    def test_payload_size_must_cover_payload(self):
        with pytest.raises(ValueError):
            Dot11Frame(src=SRC, dst=DST, payload_size=2, payload=b"abcdef")

    def test_with_src_rewrites(self):
        frame = Dot11Frame(src=SRC, dst=DST, payload_size=10)
        other = MacAddress.parse("02:00:00:00:00:03")
        assert frame.with_src(other).src == other
        assert frame.src == SRC

    def test_with_dst_rewrites(self):
        frame = Dot11Frame(src=SRC, dst=DST, payload_size=10)
        other = MacAddress.parse("02:00:00:00:00:04")
        assert frame.with_dst(other).dst == other

    def test_with_time(self):
        frame = Dot11Frame(src=SRC, dst=DST, payload_size=10).with_time(4.5)
        assert frame.time == 4.5
