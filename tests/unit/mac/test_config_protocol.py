"""Tests for the Fig. 2 configuration handshake."""

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.config_protocol import (
    ConfigReply,
    ConfigRequest,
    ConfigurationError,
    VirtualInterfaceNegotiation,
)
from repro.mac.crypto import SharedKeyCipher
from repro.mac.pool import AddressPool

CLIENT = MacAddress.parse("00:11:22:33:44:55")


@pytest.fixture
def cipher():
    return SharedKeyCipher(b"wlan-psk")


@pytest.fixture
def negotiation(cipher, rng):
    return VirtualInterfaceNegotiation(cipher, AddressPool(rng), max_interfaces_per_client=5)


class TestMessages:
    def test_request_roundtrip(self, cipher):
        request = ConfigRequest(CLIENT, nonce=77, requested_interfaces=3)
        wire = request.encode(cipher)
        decoded = ConfigRequest.decode(wire, cipher, nonce_hint=77)
        assert decoded == request

    def test_reply_roundtrip(self, cipher):
        reply = ConfigReply(CLIENT, nonce=77, virtual_addresses=(MacAddress(1), MacAddress(2)))
        wire = reply.encode(cipher)
        decoded = ConfigReply.decode(wire, cipher, nonce_hint=77)
        assert decoded == reply

    def test_request_tamper_detected(self, cipher):
        wire = bytearray(ConfigRequest(CLIENT, 77, 3).encode(cipher))
        wire[1] ^= 0x55
        with pytest.raises(ConfigurationError):
            ConfigRequest.decode(bytes(wire), cipher, nonce_hint=77)

    def test_wire_hides_mapping(self, cipher):
        # Encrypted config frames must not leak the addresses in clear.
        reply = ConfigReply(CLIENT, 77, (MacAddress.parse("02:aa:bb:cc:dd:ee"),))
        wire = reply.encode(cipher)
        assert b"02:aa:bb:cc:dd:ee" not in wire
        assert str(CLIENT).encode() not in wire


class TestHandshake:
    def test_full_flow(self, negotiation, rng):
        request, wire = negotiation.build_request(CLIENT, 3, rng)
        reply, reply_wire = negotiation.handle_request(wire, request.nonce)
        verified = negotiation.verify_reply(request, reply_wire)
        assert verified.nonce == request.nonce
        assert len(verified.virtual_addresses) == 3
        assert len(set(verified.virtual_addresses)) == 3

    def test_ap_caps_interface_count(self, negotiation, rng):
        request, wire = negotiation.build_request(CLIENT, 99, rng)
        reply, _ = negotiation.handle_request(wire, request.nonce)
        assert len(reply.virtual_addresses) == 5  # the AP's cap

    def test_client_rejects_wrong_nonce(self, negotiation, cipher, rng):
        request, wire = negotiation.build_request(CLIENT, 2, rng)
        forged = ConfigReply(CLIENT, request.nonce + 1, (MacAddress(9),))
        # Encode under the forged nonce's keystream, then hand to client
        # expecting the original nonce: decryption fails authentication.
        forged_wire = forged.encode(cipher)
        with pytest.raises(ConfigurationError):
            negotiation.verify_reply(request, forged_wire)

    def test_replay_rejected(self, negotiation, rng):
        request, wire = negotiation.build_request(CLIENT, 2, rng)
        negotiation.handle_request(wire, request.nonce)
        with pytest.raises(ConfigurationError, match="replay"):
            negotiation.handle_request(wire, request.nonce)

    def test_revoke_recycles_pool(self, negotiation, rng):
        request, wire = negotiation.build_request(CLIENT, 4, rng)
        negotiation.handle_request(wire, request.nonce)
        assert negotiation.revoke(CLIENT) == 4

    def test_zero_interface_request_rejected(self, negotiation, rng):
        with pytest.raises(ValueError):
            negotiation.build_request(CLIENT, 0, rng)

    def test_nonces_are_fresh(self, negotiation, rng):
        nonce_a = negotiation.build_request(CLIENT, 1, rng)[0].nonce
        nonce_b = negotiation.build_request(CLIENT, 1, rng)[0].nonce
        assert nonce_a != nonce_b
