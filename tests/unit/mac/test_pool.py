"""Tests for the AP's MAC address pool."""

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.pool import AddressPool, PoolExhaustedError


@pytest.fixture
def pool(rng):
    return AddressPool(rng)


class TestAllocation:
    def test_allocates_distinct_addresses(self, pool):
        addresses = pool.allocate("client-a", 5)
        assert len(set(addresses)) == 5
        assert pool.allocated_count == 5

    def test_tracks_owner(self, pool):
        [address] = pool.allocate("client-a", 1)
        assert pool.owner_of(address) == "client-a"
        assert pool.is_allocated(address)

    def test_rejects_zero_count(self, pool):
        with pytest.raises(ValueError):
            pool.allocate("client-a", 0)

    def test_never_hands_out_reserved(self, rng):
        reserved = MacAddress.parse("02:00:00:00:00:01")
        pool = AddressPool(rng, reserved={reserved})
        addresses = pool.allocate("x", 200)
        assert reserved not in addresses

    def test_reserve_after_construction(self, pool, rng):
        extra = MacAddress.parse("02:00:00:00:00:02")
        pool.reserve(extra)
        assert extra not in pool.allocate("x", 100)


class TestRelease:
    def test_release_single(self, pool):
        [address] = pool.allocate("a", 1)
        pool.release(address)
        assert not pool.is_allocated(address)

    def test_release_unknown_raises(self, pool):
        with pytest.raises(KeyError):
            pool.release(MacAddress(42))

    def test_release_owner_recycles_all(self, pool):
        pool.allocate("a", 3)
        pool.allocate("b", 2)
        freed = pool.release_owner("a")
        assert freed == 3
        assert pool.allocated_count == 2
        assert pool.addresses_of("a") == []

    def test_addresses_of(self, pool):
        allocated = pool.allocate("a", 4)
        assert sorted(pool.addresses_of("a")) == sorted(allocated)


class TestExhaustion:
    def test_raises_after_max_attempts(self):
        class FixedRng:
            def integers(self, low, high=None):
                return 7  # always the same draw

        pool = AddressPool(FixedRng(), max_draw_attempts=4)
        pool.allocate("a", 1)  # takes the single possible value
        with pytest.raises(PoolExhaustedError):
            pool.allocate("b", 1)
