"""Tests for the toy authenticated cipher."""

import pytest

from repro.mac.crypto import IntegrityError, SharedKeyCipher


class TestRoundTrip:
    def test_encrypt_decrypt(self):
        cipher = SharedKeyCipher(b"psk")
        assert cipher.decrypt(cipher.encrypt(b"hello", 1), 1) == b"hello"

    def test_empty_plaintext(self):
        cipher = SharedKeyCipher(b"psk")
        assert cipher.decrypt(cipher.encrypt(b"", 1), 1) == b""

    def test_long_plaintext(self):
        cipher = SharedKeyCipher(b"psk")
        message = bytes(range(256)) * 10
        assert cipher.decrypt(cipher.encrypt(message, 5), 5) == message


class TestSecurityProperties:
    def test_ciphertext_differs_from_plaintext(self):
        cipher = SharedKeyCipher(b"psk")
        assert cipher.encrypt(b"secret-mapping", 1)[:14] != b"secret-mapping"

    def test_nonce_changes_ciphertext(self):
        cipher = SharedKeyCipher(b"psk")
        assert cipher.encrypt(b"m", 1) != cipher.encrypt(b"m", 2)

    def test_wrong_nonce_fails_auth(self):
        cipher = SharedKeyCipher(b"psk")
        wire = cipher.encrypt(b"m", 1)
        with pytest.raises(IntegrityError):
            cipher.decrypt(wire, 2)

    def test_tampering_detected(self):
        cipher = SharedKeyCipher(b"psk")
        wire = bytearray(cipher.encrypt(b"mapping", 1))
        wire[0] ^= 0xFF
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(wire), 1)

    def test_truncated_ciphertext_rejected(self):
        cipher = SharedKeyCipher(b"psk")
        with pytest.raises(IntegrityError):
            cipher.decrypt(b"short", 1)

    def test_different_keys_cannot_decrypt(self):
        wire = SharedKeyCipher(b"psk-a").encrypt(b"m", 1)
        with pytest.raises(IntegrityError):
            SharedKeyCipher(b"psk-b").decrypt(wire, 1)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            SharedKeyCipher(b"")
