"""Tests for the client driver."""

import pytest

from repro.core.schedulers import OrthogonalReshaper
from repro.mac.addresses import MacAddress
from repro.mac.config_protocol import VirtualInterfaceNegotiation
from repro.mac.crypto import SharedKeyCipher
from repro.mac.driver import ClientDriver
from repro.mac.frames import Dot11Frame
from repro.mac.pool import AddressPool

CLIENT = MacAddress.parse("00:11:22:33:44:55")
AP = MacAddress.parse("00:aa:00:aa:00:aa")


@pytest.fixture
def negotiation(rng):
    return VirtualInterfaceNegotiation(SharedKeyCipher(b"k"), AddressPool(rng))


def configured_driver(negotiation, rng, scheduler=None) -> ClientDriver:
    driver = ClientDriver(CLIENT, scheduler=scheduler)
    wire = driver.request_interfaces(negotiation, 3, rng)
    _, reply_wire = negotiation.handle_request(wire, driver._pending_request.nonce)
    driver.complete_configuration(negotiation, reply_wire)
    return driver


class TestConfiguration:
    def test_handshake_configures_vaps(self, negotiation, rng):
        driver = configured_driver(negotiation, rng)
        assert driver.is_configured
        assert driver.interface_count == 3

    def test_complete_without_request_raises(self, negotiation):
        driver = ClientDriver(CLIENT)
        with pytest.raises(RuntimeError):
            driver.complete_configuration(negotiation, b"xx")


class TestSend:
    def test_send_requires_configuration(self):
        driver = ClientDriver(CLIENT)
        with pytest.raises(RuntimeError):
            driver.send(AP, 100, 0.0)

    def test_send_without_scheduler_uses_iface0(self, negotiation, rng):
        driver = configured_driver(negotiation, rng)
        frame = driver.send(AP, 100, 0.0)
        assert frame.src == driver.vaps.addresses[0]

    def test_send_with_or_scheduler_routes_by_size(self, negotiation, rng):
        driver = configured_driver(
            negotiation, rng, scheduler=OrthogonalReshaper.paper_default()
        )
        small = driver.send(AP, 100, 0.0)
        large = driver.send(AP, 1540, 0.1)
        assert small.src == driver.vaps.addresses[0]
        assert large.src == driver.vaps.addresses[2]


class TestReceive:
    def test_accepts_virtual_destination_and_restores(self, negotiation, rng):
        driver = configured_driver(negotiation, rng)
        virtual = driver.vaps.addresses[1]
        frame = Dot11Frame(src=AP, dst=virtual, payload_size=64)
        delivered = driver.receive(frame)
        assert delivered is not None
        assert delivered.dst == CLIENT  # upper layers see the physical MAC
        assert driver.delivered_to_upper[-1].dst == CLIENT

    def test_ignores_foreign_frames(self, negotiation, rng):
        driver = configured_driver(negotiation, rng)
        foreign = Dot11Frame(src=AP, dst=MacAddress(123456), payload_size=64)
        assert driver.receive(foreign) is None

    def test_unconfigured_driver_accepts_physical_only(self):
        driver = ClientDriver(CLIENT)
        assert driver.receive(Dot11Frame(src=AP, dst=CLIENT, payload_size=1)) is not None
        assert driver.receive(Dot11Frame(src=AP, dst=AP, payload_size=1)) is None
