"""Tests for the sharded corpus federation (`repro-shardset` v1)."""

import hashlib
import json
import os

import pytest

from repro import obs
from repro.storage import (
    PLACEMENT_RULE,
    SHARDSET_FORMAT_NAME,
    SHARDSET_MANIFEST_NAME,
    SHARDSET_VERSION,
    ShardSet,
    ShardSetWriter,
    StoreFormatError,
    TraceStore,
    TraceStoreWriter,
    corpus_manifest,
    is_shardset,
    load_shardset_manifest,
    open_corpus,
    shard_for_key,
    write_traces,
)
from repro.storage import shards as shards_module
from repro.traffic.apps import AppType
from repro.traffic.trace import Trace


def assert_traces_bitwise_equal(left: Trace, right: Trace) -> None:
    for column in ("times", "sizes", "directions", "ifaces", "channels", "rssi"):
        assert getattr(left, column).tobytes() == getattr(right, column).tobytes(), column
    assert left.label == right.label
    assert left.meta == right.meta


@pytest.fixture(autouse=True)
def reset_mapped_tracker():
    # The tracker is process-global; tests that hand out federations
    # without closing them must not skew another test's peak gauge.
    shards_module._TRACKER.current = 0
    yield
    shards_module._TRACKER.current = 0


@pytest.fixture
def shards_path(tmp_path):
    return str(tmp_path / "corpus.shards")


@pytest.fixture(scope="module")
def app_traces(generator):
    return [
        generator.generate(app, duration=20.0, session=s)
        for app in (AppType.CHATTING, AppType.GAMING, AppType.BROWSING)
        for s in range(2)
    ]


def build_federation(path, traces, shards=3, **kwargs):
    """Write ``traces`` with station identities sta0..staN-1."""
    with ShardSetWriter(path, shards=shards, **kwargs) as writer:
        for i, trace in enumerate(traces):
            writer.add(
                trace,
                role="train" if i % 2 == 0 else "eval",
                station=f"sta{i}",
            )
    return ShardSet.open(path)


class TestPlacement:
    def test_rule_is_sha256_mod_shards(self):
        # The placement rule is the spec, verbatim: first 8 digest
        # bytes, big-endian, modulo the shard count.
        for key in ("sta0", "sta000042", "odd key é"):
            digest = hashlib.sha256(key.encode("utf-8")).digest()
            expected = int.from_bytes(digest[:8], "big") % 5
            assert shard_for_key(key, 5) == expected

    def test_stable_across_calls_and_in_range(self):
        placements = [shard_for_key(f"sta{i}", 7) for i in range(50)]
        assert placements == [shard_for_key(f"sta{i}", 7) for i in range(50)]
        assert all(0 <= p < 7 for p in placements)
        # A healthy hash spreads 50 keys over more than one shard.
        assert len(set(placements)) > 1

    def test_single_shard_takes_everything(self):
        assert {shard_for_key(f"sta{i}", 1) for i in range(10)} == {0}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            shard_for_key("sta0", 0)
        with pytest.raises(ValueError, match=">= 1"):
            ShardSetWriter("unused", shards=0)


class TestRoundTrip:
    def test_columns_roles_and_stations_survive(self, app_traces, shards_path):
        federation = build_federation(shards_path, app_traces)
        assert len(federation) == len(app_traces)
        assert federation.packets == sum(len(t) for t in app_traces)
        by_station = {e.station: e for e in federation.entries()}
        for i, original in enumerate(app_traces):
            entry = by_station[f"sta{i}"]
            assert_traces_bitwise_equal(original, federation.trace(entry.index))
            assert entry.role == ("train" if i % 2 == 0 else "eval")

    def test_entries_tile_the_federation_contiguously(
        self, app_traces, shards_path
    ):
        federation = build_federation(shards_path, app_traces)
        offset = 0
        for index, entry in enumerate(federation.entries()):
            assert entry.index == index
            assert entry.offset == offset
            offset += entry.count
        assert offset == federation.packets

    def test_every_trace_lands_in_its_hashed_shard(
        self, app_traces, shards_path
    ):
        federation = build_federation(shards_path, app_traces, shards=3)
        for entry in federation.entries():
            expected = shard_for_key(entry.station, 3)
            assert federation.shard_of(entry.index) == expected
            assert federation.station_shard(entry.station) == expected

    def test_explicit_key_overrides_station_for_routing(
        self, simple_trace, shards_path
    ):
        with ShardSetWriter(shards_path, shards=4) as writer:
            shard, _ = writer.add(simple_trace, station="staX", key="appkey")
        assert shard == shard_for_key("appkey", 4)
        federation = ShardSet.open(shards_path)
        assert federation.shard_of(0) == shard
        # The routing key is placement-only; the stored identity is the
        # station.
        assert federation.entry(0).station == "staX"

    def test_anonymous_traces_route_by_insertion_order(
        self, simple_trace, shards_path
    ):
        with ShardSetWriter(shards_path, shards=4) as writer:
            first, _ = writer.add(simple_trace)
            second, _ = writer.add(simple_trace)
        assert first == shard_for_key("trace-0", 4)
        assert second == shard_for_key("trace-1", 4)

    def test_empty_shards_are_valid_members(self, simple_trace, shards_path):
        # One trace over many shards: most members are empty stores.
        with ShardSetWriter(shards_path, shards=5) as writer:
            writer.add(simple_trace, station="sta0")
        federation = ShardSet.open(shards_path)
        assert len(federation) == 1
        assert federation.shard_count == 5
        assert_traces_bitwise_equal(simple_trace, federation.trace(0))
        for index in range(5):
            assert len(TraceStore.open(federation.shard_paths[index])) in (0, 1)

    def test_empty_federation(self, shards_path):
        with ShardSetWriter(shards_path, shards=2):
            pass
        federation = ShardSet.open(shards_path)
        assert len(federation) == 0 and federation.packets == 0
        assert federation.labels() == ()


class TestMergedViews:
    def test_select_and_labels(self, app_traces, shards_path):
        federation = build_federation(shards_path, app_traces)
        train = list(federation.select(role="train"))
        assert len(train) == 3 and all(e.role == "train" for e in train)
        assert set(federation.labels()) == {"chatting", "gaming", "browsing"}
        by_label = federation.traces_by_label(role="train")
        assert sum(len(v) for v in by_label.values()) == 3

    def test_traces_by_label_skips_unlabeled(self, simple_trace, shards_path):
        with ShardSetWriter(shards_path, shards=2) as writer:
            writer.add(simple_trace, station="sta0")
            writer.add(simple_trace.with_label(None), station="sta1")
        federation = ShardSet.open(shards_path)
        by_label = federation.traces_by_label()
        assert set(by_label) == {"test"}
        assert None not in by_label
        assert federation.labels() == ("test",)

    def test_iteration_matches_indexing(self, app_traces, shards_path):
        federation = build_federation(shards_path, app_traces)
        for index, trace in enumerate(federation):
            assert_traces_bitwise_equal(trace, federation[index])

    def test_nbytes_accounting(self, app_traces, shards_path):
        federation = build_federation(shards_path, app_traces, shards=3)
        assert federation.nbytes == federation.packets * 24
        assert sum(
            federation.shard_nbytes(i) for i in range(3)
        ) == federation.nbytes


class TestLazyMapping:
    def test_open_maps_nothing_and_access_maps_one_shard(
        self, app_traces, shards_path
    ):
        build_federation(shards_path, app_traces, shards=3).close()
        with obs.capture() as cap:
            federation = ShardSet.open(shards_path)
            assert cap.metrics.counters.get("proc.shard.opens", 0) == 0
            # Touch one trace: exactly its member store maps.
            target = federation.shard_of(0)
            federation.trace(0)
            assert cap.metrics.counters["proc.shard.opens"] == 1
            assert cap.metrics.gauges["shards.bytes_mapped_peak"] == (
                federation.shard_nbytes(target)
            )
            federation.close()

    def test_walk_with_release_bounds_peak_at_one_shard(
        self, app_traces, shards_path
    ):
        federation = build_federation(shards_path, app_traces, shards=3)
        federation.release()
        per_shard = [federation.shard_nbytes(i) for i in range(3)]
        with obs.capture() as cap:
            for index in range(len(federation)):
                federation.trace(index)
                federation.release()
            walked = cap.metrics.gauges["shards.bytes_mapped_peak"]
        assert walked == max(per_shard)
        with obs.capture() as cap:
            for index in range(len(federation)):
                federation.trace(index)  # no release: all shards stay mapped
            resident = cap.metrics.gauges["shards.bytes_mapped_peak"]
        assert resident == sum(per_shard)
        federation.close()

    def test_shared_member_mapping_is_cached(self, app_traces, shards_path):
        federation = build_federation(shards_path, app_traces, shards=2)
        shard = federation.shard_of(0)
        assert federation.shard(shard) is federation.shard(shard)
        federation.close()

    def test_closed_federation_refuses_access(self, app_traces, shards_path):
        federation = build_federation(shards_path, app_traces)
        with federation:
            pass
        with pytest.raises(RuntimeError, match="closed"):
            federation.trace(0)


class TestFormatGuards:
    def test_missing_manifest_is_not_a_shard_set(self, tmp_path):
        assert not is_shardset(str(tmp_path))
        with pytest.raises(StoreFormatError, match="not a shard set"):
            ShardSet.open(str(tmp_path))

    def test_store_path_refused_by_shard_writer(self, simple_trace, tmp_path):
        store_path = str(tmp_path / "single.store")
        write_traces(store_path, [simple_trace])
        with pytest.raises(FileExistsError, match="single trace store"):
            ShardSetWriter(store_path, shards=2)

    def test_shardset_path_refused_by_store_writer(
        self, simple_trace, shards_path
    ):
        build_federation(shards_path, [simple_trace], shards=2).close()
        with pytest.raises(FileExistsError, match="federation"):
            TraceStoreWriter(shards_path)
        # Even overwrite=True: a store must never silently replace a
        # federation in place.
        with pytest.raises(FileExistsError, match="federation"):
            TraceStoreWriter(shards_path, overwrite=True)

    def test_existing_federation_needs_overwrite(
        self, simple_trace, shards_path
    ):
        build_federation(shards_path, [simple_trace], shards=2).close()
        with pytest.raises(FileExistsError, match="overwrite"):
            ShardSetWriter(shards_path, shards=2)
        replaced = build_federation(
            shards_path, [simple_trace, simple_trace], shards=3, overwrite=True
        )
        assert len(replaced) == 2 and replaced.shard_count == 3
        replaced.close()

    def test_interrupted_overwrite_invalidates_old_federation(
        self, simple_trace, shards_path
    ):
        build_federation(shards_path, [simple_trace], shards=2).close()
        writer = ShardSetWriter(shards_path, shards=2, overwrite=True)
        # The old federation manifest is already gone: a crash here
        # leaves "not a shard set", never stale metadata.
        assert not is_shardset(shards_path)
        writer.abort()
        with pytest.raises(StoreFormatError, match="not a shard set"):
            ShardSet.open(shards_path)

    def test_aborted_build_leaves_no_federation(self, simple_trace, shards_path):
        with pytest.raises(RuntimeError, match="boom"):
            with ShardSetWriter(shards_path, shards=2) as writer:
                writer.add(simple_trace, station="sta0")
                raise RuntimeError("boom")
        assert not is_shardset(shards_path)

    def test_closed_writer_refuses_further_adds(self, simple_trace, shards_path):
        writer = ShardSetWriter(shards_path, shards=2)
        writer.close()
        with pytest.raises(RuntimeError, match="closed"):
            writer.add(simple_trace)


class TestManifestValidation:
    @pytest.fixture
    def federation_path(self, app_traces, shards_path):
        build_federation(shards_path, app_traces, shards=2).close()
        return shards_path

    def manifest(self, path):
        with open(os.path.join(path, SHARDSET_MANIFEST_NAME)) as stream:
            return json.load(stream)

    def nonempty_member(self, path):
        """A member directory that actually holds at least one trace."""
        federation = ShardSet.open(path)
        member = federation.shard_paths[federation.shard_of(0)]
        federation.close()
        return member

    def rewrite(self, path, manifest):
        with open(os.path.join(path, SHARDSET_MANIFEST_NAME), "w") as stream:
            json.dump(manifest, stream)

    def test_invalid_json_refused(self, federation_path):
        with open(
            os.path.join(federation_path, SHARDSET_MANIFEST_NAME), "w"
        ) as stream:
            stream.write("{not json")
        with pytest.raises(StoreFormatError, match="not valid JSON"):
            ShardSet.open(federation_path)

    def test_wrong_format_discriminator_refused(self, federation_path):
        manifest = self.manifest(federation_path)
        manifest["format"] = "something-else"
        self.rewrite(federation_path, manifest)
        with pytest.raises(StoreFormatError, match=SHARDSET_FORMAT_NAME):
            ShardSet.open(federation_path)

    def test_future_version_refused(self, federation_path):
        manifest = self.manifest(federation_path)
        manifest["version"] = SHARDSET_VERSION + 1
        self.rewrite(federation_path, manifest)
        with pytest.raises(StoreFormatError, match="not supported"):
            ShardSet.open(federation_path)

    def test_unknown_placement_rule_refused(self, federation_path):
        manifest = self.manifest(federation_path)
        manifest["placement"]["rule"] = "station-hash-md5"
        self.rewrite(federation_path, manifest)
        with pytest.raises(StoreFormatError, match="placement rule"):
            ShardSet.open(federation_path)

    def test_member_list_length_mismatch_refused(self, federation_path):
        manifest = self.manifest(federation_path)
        manifest["shards"] = manifest["shards"][:1]
        self.rewrite(federation_path, manifest)
        with pytest.raises(StoreFormatError, match="declares 2 shards"):
            ShardSet.open(federation_path)

    def test_negative_member_count_refused(self, federation_path):
        member = self.nonempty_member(federation_path)
        manifest_path = os.path.join(member, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        manifest["traces"][0]["count"] = -1
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="negative packet count"):
            ShardSet.open(federation_path)

    def test_member_offset_mismatch_refused(self, federation_path):
        member = self.nonempty_member(federation_path)
        manifest_path = os.path.join(member, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        manifest["traces"][0]["offset"] = 7
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="tile the member"):
            ShardSet.open(federation_path)

    def test_member_packet_total_mismatch_refused(self, federation_path):
        member = self.nonempty_member(federation_path)
        manifest_path = os.path.join(member, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        manifest["packets"] += 5
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="declares"):
            ShardSet.open(federation_path)

    def test_federation_totals_mismatch_refused(self, federation_path):
        manifest = self.manifest(federation_path)
        manifest["traces"] += 1
        self.rewrite(federation_path, manifest)
        with pytest.raises(StoreFormatError, match="federation manifest declares"):
            ShardSet.open(federation_path)

    def test_missing_member_store_refused(self, federation_path):
        member = os.path.join(federation_path, "shard-0001.store")
        os.remove(os.path.join(member, "manifest.json"))
        with pytest.raises(StoreFormatError, match="not a trace store"):
            ShardSet.open(federation_path)


class TestProvenance:
    def test_scenario_meta_and_schemes_recorded(self, simple_trace, shards_path):
        schemes = [{"scheme": "padding", "params": {"block": 128}}]
        federation = build_federation(
            shards_path,
            [simple_trace],
            shards=2,
            scenario={"seed": 9},
            meta={"note": "unit"},
            schemes=schemes,
        )
        assert federation.scenario == {"seed": 9}
        assert federation.meta == {"note": "unit"}
        assert federation.schemes == schemes
        specs = federation.scheme_specs()
        assert len(specs) == 1 and specs[0].scheme == "padding"
        manifest = load_shardset_manifest(shards_path)
        assert manifest["placement"] == {"rule": PLACEMENT_RULE, "shards": 2}
        federation.close()

    def test_schemes_key_absent_when_not_provided(self, simple_trace, shards_path):
        federation = build_federation(shards_path, [simple_trace], shards=2)
        assert "schemes" not in load_shardset_manifest(shards_path)
        assert federation.schemes is None
        assert federation.scheme_specs() == ()
        federation.close()

    def test_unserializable_meta_raises_informatively(self, shards_path):
        with pytest.raises(ValueError, match="JSON-serializable"):
            with ShardSetWriter(
                shards_path, shards=1, meta={"oops": float("nan")}
            ) as writer:
                writer.add(Trace.from_arrays([0.0], [10]))
        assert not is_shardset(shards_path)


class TestDispatch:
    def test_open_corpus_returns_matching_reader(
        self, simple_trace, tmp_path, shards_path
    ):
        store_path = str(tmp_path / "single.store")
        write_traces(store_path, [simple_trace], scenario={"seed": 3})
        build_federation(
            shards_path, [simple_trace], shards=2, scenario={"seed": 3}
        ).close()
        assert isinstance(open_corpus(store_path), TraceStore)
        assert isinstance(open_corpus(shards_path), ShardSet)
        assert is_shardset(shards_path) and not is_shardset(store_path)

    def test_corpus_manifest_is_format_agnostic(
        self, simple_trace, tmp_path, shards_path
    ):
        store_path = str(tmp_path / "single.store")
        write_traces(store_path, [simple_trace], scenario={"seed": 3})
        build_federation(
            shards_path, [simple_trace], shards=2, scenario={"seed": 3}
        ).close()
        assert corpus_manifest(store_path)["scenario"] == {"seed": 3}
        assert corpus_manifest(shards_path)["scenario"] == {"seed": 3}
