"""Tests for the columnar on-disk trace store."""

import json
import os

import numpy as np
import pytest

from repro.storage import (
    COLUMN_DTYPES,
    FORMAT_VERSION,
    StoreFormatError,
    TraceStore,
    TraceStoreWriter,
    load_manifest,
    write_traces,
)
from repro.traffic.apps import AppType
from repro.traffic.trace import Trace


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "corpus.store")


@pytest.fixture(scope="module")
def app_traces(generator):
    return [
        generator.generate(app, duration=20.0, session=s)
        for app in (AppType.CHATTING, AppType.GAMING)
        for s in range(2)
    ]


def assert_traces_bitwise_equal(left: Trace, right: Trace) -> None:
    for column in ("times", "sizes", "directions", "ifaces", "channels", "rssi"):
        assert getattr(left, column).tobytes() == getattr(right, column).tobytes(), column
    assert left.label == right.label
    assert left.meta == right.meta


class TestRoundTrip:
    def test_columns_labels_and_meta_survive(self, app_traces, store_path):
        store = write_traces(store_path, app_traces)
        assert len(store) == len(app_traces)
        assert store.packets == sum(len(t) for t in app_traces)
        for original, loaded in zip(app_traces, store):
            assert_traces_bitwise_equal(original, loaded)

    def test_entry_roles_and_stations(self, app_traces, store_path):
        store = write_traces(
            store_path,
            [
                (trace, {"role": "train" if i % 2 == 0 else "eval",
                         "station": f"sta{i}"})
                for i, trace in enumerate(app_traces)
            ],
        )
        assert [e.role for e in store.entries()] == ["train", "eval"] * 2
        assert [e.station for e in store.entries()] == [f"sta{i}" for i in range(4)]
        assert [e.role for e in store.select(role="eval")] == ["eval", "eval"]
        by_label = store.traces_by_label(role="train")
        assert set(by_label) == {"chatting", "gaming"}

    def test_simple_trace_and_label_none(self, simple_trace, store_path):
        unlabeled = simple_trace.with_label(None)
        store = write_traces(store_path, [simple_trace, unlabeled])
        assert store.trace(0).label == "test"
        assert store.trace(1).label is None
        assert store.labels() == ("test",)
        assert_traces_bitwise_equal(unlabeled, store.trace(1))

    def test_traces_by_label_skips_unlabeled(self, simple_trace, store_path):
        # Regression: unlabeled entries used to leak in under a None
        # key, which labels() never reports and training code would
        # treat as a phantom class.
        store = write_traces(
            store_path, [simple_trace, simple_trace.with_label(None)]
        )
        by_label = store.traces_by_label()
        assert set(by_label) == {"test"}
        assert None not in by_label
        assert len(by_label["test"]) == 1

    def test_schemes_recipe_round_trips(self, simple_trace, store_path):
        schemes = [{"scheme": "padding", "params": {"block": 128}}]
        store = write_traces(store_path, [simple_trace], schemes=schemes)
        assert store.schemes == schemes
        assert load_manifest(store_path)["schemes"] == schemes
        (spec,) = store.scheme_specs()
        assert spec.scheme == "padding"

    def test_schemes_key_absent_when_not_provided(self, simple_trace, store_path):
        store = write_traces(store_path, [simple_trace])
        assert "schemes" not in load_manifest(store_path)
        assert store.scheme_specs() == ()

    def test_empty_trace_and_empty_store(self, store_path, tmp_path):
        store = write_traces(store_path, [Trace.empty(label="nothing")])
        assert len(store) == 1
        assert len(store.trace(0)) == 0
        assert store.trace(0).label == "nothing"
        empty = write_traces(str(tmp_path / "empty.store"), [])
        assert len(empty) == 0 and empty.packets == 0

    def test_rssi_nan_payload_bit_exact(self, store_path):
        trace = Trace.from_arrays(
            times=[0.0, 1.0, 2.0],
            sizes=[10, 20, 30],
            rssi=[-40.0, float("nan"), -62.5],
        )
        store = write_traces(store_path, [trace])
        assert store.trace(0).rssi.tobytes() == trace.rssi.tobytes()
        assert np.isnan(store.trace(0).rssi[1])

    def test_reopen_is_idempotent(self, app_traces, store_path):
        write_traces(store_path, app_traces)
        first = TraceStore.open(store_path)
        second = TraceStore.open(store_path)
        for a, b in zip(first, second):
            assert_traces_bitwise_equal(a, b)
        assert first.entries() == second.entries()

    def test_validate_passes_on_real_corpus(self, app_traces, store_path):
        write_traces(store_path, app_traces).validate()


class TestZeroCopy:
    def test_traces_are_memmap_views(self, app_traces, store_path):
        store = write_traces(store_path, app_traces)
        trace = store.trace(1)
        buffers = {
            np.asarray(getattr(trace, c)).base is not None
            or isinstance(getattr(trace, c), np.memmap)
            for c in ("times", "sizes", "directions")
        }
        assert buffers == {True}

    def test_maps_are_read_only(self, app_traces, store_path):
        store = write_traces(store_path, app_traces)
        with pytest.raises(ValueError):
            store.trace(0).times[0] = 123.0

    def test_trace_identity_stable_for_caches(self, app_traces, store_path):
        store = write_traces(store_path, app_traces)
        assert store.trace(2) is store.trace(2)

    def test_closed_store_refuses_access(self, app_traces, store_path):
        store = write_traces(store_path, app_traces)
        handed_out = store.trace(0)
        with store:
            pass  # context exit closes
        with pytest.raises(RuntimeError, match="closed"):
            store.trace(1)
        # Views already handed out stay alive (numpy pins the buffer).
        assert float(handed_out.times[0]) >= 0.0


class TestChunkedWriter:
    def test_chunked_append_equals_one_shot(self, simple_trace, tmp_path):
        one_shot = write_traces(str(tmp_path / "a.store"), [simple_trace])
        with TraceStoreWriter(str(tmp_path / "b.store")) as writer:
            writer.begin_trace(label=simple_trace.label, meta=simple_trace.meta)
            half = len(simple_trace) // 2
            for sl in (slice(None, half), slice(half, None)):
                writer.append_columns(
                    simple_trace.times[sl], simple_trace.sizes[sl],
                    simple_trace.directions[sl], simple_trace.ifaces[sl],
                    simple_trace.channels[sl], simple_trace.rssi[sl],
                )
            writer.end_trace()
        chunked = TraceStore.open(str(tmp_path / "b.store"))
        assert_traces_bitwise_equal(one_shot.trace(0), chunked.trace(0))

    def test_unsorted_chunk_rejected(self, store_path):
        with pytest.raises(ValueError, match="sorted"):
            with TraceStoreWriter(store_path) as writer:
                writer.begin_trace()
                writer.append_columns([2.0, 1.0], [10, 10])

    def test_chunk_boundary_regression_rejected(self, store_path):
        with pytest.raises(ValueError, match="before the previous chunk"):
            with TraceStoreWriter(store_path) as writer:
                writer.begin_trace()
                writer.append_columns([0.0, 5.0], [10, 10])
                writer.append_columns([4.0], [10])

    def test_bad_sizes_and_negative_times_rejected(self, store_path, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            with TraceStoreWriter(store_path) as writer:
                writer.begin_trace()
                writer.append_columns([0.0], [0])
        with pytest.raises(ValueError, match="non-negative"):
            with TraceStoreWriter(str(tmp_path / "neg.store")) as writer:
                writer.begin_trace()
                writer.append_columns([-1.0], [10])

    def test_mismatched_column_length_rejected(self, store_path):
        with pytest.raises(ValueError, match="length"):
            with TraceStoreWriter(store_path) as writer:
                writer.begin_trace()
                writer.append_columns([0.0, 1.0], [10, 10], directions=[0])

    def test_append_without_begin_raises(self, store_path):
        with TraceStoreWriter(store_path) as writer:
            with pytest.raises(RuntimeError, match="begin_trace"):
                writer.append_columns([0.0], [10])

    def test_close_with_open_trace_refuses_to_seal_silently(
        self, simple_trace, store_path
    ):
        # Regression: close() used to auto-seal a still-open trace,
        # committing a possibly half-written build as valid.
        writer = TraceStoreWriter(store_path)
        writer.begin_trace(label="half")
        writer.append_columns([0.0], [10])
        with pytest.raises(RuntimeError, match="still open"):
            writer.close()
        # The build is still recoverable: sealing explicitly commits.
        writer.end_trace()
        writer.close()
        assert TraceStore.open(store_path).trace(0).label == "half"

    def test_aborted_writer_leaves_no_store(self, simple_trace, store_path):
        with pytest.raises(RuntimeError, match="boom"):
            with TraceStoreWriter(store_path) as writer:
                writer.add(simple_trace)
                raise RuntimeError("boom")
        with pytest.raises(StoreFormatError, match="not a trace store"):
            TraceStore.open(store_path)


class TestFormatGuards:
    def test_existing_store_needs_overwrite(self, simple_trace, store_path):
        write_traces(store_path, [simple_trace])
        with pytest.raises(FileExistsError):
            TraceStoreWriter(store_path)
        replaced = write_traces(store_path, [simple_trace], overwrite=True)
        assert len(replaced) == 1

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StoreFormatError, match="not a trace store"):
            TraceStore.open(str(tmp_path))

    def test_interrupted_overwrite_invalidates_old_store(
        self, simple_trace, store_path
    ):
        write_traces(store_path, [simple_trace])
        # Overwriting truncates columns immediately; the OLD manifest
        # must already be gone so a crash here (writer never closed)
        # leaves "not a trace store", never stale metadata over fresh
        # column bytes.
        writer = TraceStoreWriter(store_path, overwrite=True)
        with pytest.raises(StoreFormatError, match="not a trace store"):
            TraceStore.open(store_path)
        writer.abort()

    def test_malformed_manifests_raise_store_format_error(
        self, simple_trace, store_path
    ):
        write_traces(store_path, [simple_trace])
        manifest_path = os.path.join(store_path, "manifest.json")
        good = open(manifest_path).read()
        for breakage in (
            "[1, 2]",                      # not a dict
            "{not json",                   # invalid JSON
            good.replace('"packets"', '"paquets"'),   # missing key
        ):
            open(manifest_path, "w").write(breakage)
            with pytest.raises(StoreFormatError):
                TraceStore.open(store_path)
        manifest = json.loads(good)
        del manifest["traces"][0]["offset"]  # malformed entry record
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="malformed manifest"):
            TraceStore.open(store_path)

    def test_future_version_refused(self, simple_trace, store_path):
        write_traces(store_path, [simple_trace])
        manifest_path = os.path.join(store_path, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        manifest["version"] = FORMAT_VERSION + 1
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="not supported"):
            TraceStore.open(store_path)

    def test_truncated_column_refused(self, simple_trace, store_path):
        write_traces(store_path, [simple_trace])
        times_path = os.path.join(store_path, "times.bin")
        with open(times_path, "r+b") as handle:
            handle.truncate(os.path.getsize(times_path) - 8)
        with pytest.raises(StoreFormatError, match="times.bin"):
            TraceStore.open(store_path)

    def test_inconsistent_offsets_refused(self, simple_trace, store_path):
        write_traces(store_path, [simple_trace])
        manifest_path = os.path.join(store_path, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        manifest["traces"][0]["offset"] = 3
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="contiguous"):
            TraceStore.open(store_path)

    def test_negative_count_named_distinctly(self, simple_trace, store_path):
        # Regression: a negative count used to surface as a confusing
        # offset-mismatch on the *next* entry; it now gets its own
        # diagnosis naming the bad entry.
        write_traces(store_path, [simple_trace])
        manifest_path = os.path.join(store_path, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        manifest["traces"][0]["count"] = -8
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(
            StoreFormatError, match=r"trace 0 declares a negative packet count"
        ):
            TraceStore.open(store_path)

    def test_load_manifest_exposes_recipe(self, simple_trace, store_path):
        write_traces(store_path, [simple_trace], scenario={"seed": 3})
        manifest = load_manifest(store_path)
        assert manifest["scenario"] == {"seed": 3}
        assert set(manifest["columns"]) == set(COLUMN_DTYPES)

    def test_unserializable_meta_raises_informatively(self, store_path):
        trace = Trace.from_arrays([0.0], [10], meta={"oops": float("nan")})
        with pytest.raises(ValueError, match="JSON-serializable"):
            with TraceStoreWriter(store_path) as writer:
                writer.add(trace)
