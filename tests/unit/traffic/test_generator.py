"""Tests for the traffic generator."""

import numpy as np
import pytest

from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator, generate_app_trace
from repro.traffic.packet import DOWNLINK, UPLINK


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = TrafficGenerator(seed=5).generate(AppType.CHATTING, 30.0)
        b = TrafficGenerator(seed=5).generate(AppType.CHATTING, 30.0)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.sizes, b.sizes)

    def test_different_sessions_differ(self):
        gen = TrafficGenerator(seed=5)
        a = gen.generate(AppType.CHATTING, 30.0, session=0)
        b = gen.generate(AppType.CHATTING, 30.0, session=1)
        assert not np.array_equal(a.times, b.times)

    def test_different_seeds_differ(self):
        a = TrafficGenerator(seed=5).generate(AppType.VIDEO, 10.0)
        b = TrafficGenerator(seed=6).generate(AppType.VIDEO, 10.0)
        assert not np.array_equal(a.times, b.times)


class TestTraceShape:
    def test_label_and_meta(self):
        trace = TrafficGenerator(seed=1).generate("gaming", 20.0, session=3)
        assert trace.label == "gaming"
        assert trace.meta["session"] == 3

    def test_both_directions_present(self):
        trace = TrafficGenerator(seed=1).generate(AppType.BITTORRENT, 30.0)
        assert len(trace.direction_view(DOWNLINK)) > 0
        assert len(trace.direction_view(UPLINK)) > 0

    def test_times_sorted_and_bounded(self):
        trace = TrafficGenerator(seed=1).generate(AppType.DOWNLOADING, 10.0)
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.times[-1] < 10.0

    def test_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            TrafficGenerator(seed=1).generate(AppType.VIDEO, 0.0)

    def test_channel_stamped(self):
        trace = TrafficGenerator(seed=1).generate(AppType.VIDEO, 5.0, channel=6)
        assert set(trace.channels.tolist()) == {6}


class TestVariability:
    def test_session_rates_vary(self):
        gen = TrafficGenerator(seed=2)
        counts = [
            len(gen.generate(AppType.VIDEO, 30.0, session=s)) for s in range(6)
        ]
        assert max(counts) > 1.3 * min(counts)

    def test_plain_generator_is_calibrated(self, plain_generator):
        counts = [
            len(plain_generator.generate(AppType.DOWNLOADING, 30.0, session=s))
            for s in range(3)
        ]
        # Without session variability the CBR flow's counts stay close.
        assert max(counts) < 1.2 * min(counts)

    def test_drift_preserves_packet_order(self):
        gen = TrafficGenerator(seed=2, drift_sigma=0.8)
        trace = gen.generate(AppType.DOWNLOADING, 20.0)
        assert np.all(np.diff(trace.times) >= 0)


class TestCorpus:
    def test_generate_corpus_structure(self):
        corpus = TrafficGenerator(seed=1).generate_corpus(10.0, sessions=2)
        assert set(corpus) == set(AppType)
        assert all(len(traces) == 2 for traces in corpus.values())

    def test_convenience_wrapper(self):
        trace = generate_app_trace("chatting", 10.0, seed=4)
        assert trace.label == "chatting"
