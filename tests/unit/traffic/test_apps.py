"""Tests for the seven application models."""

import pytest

from repro.traffic.apps import ALL_APPS, APP_MODELS, AppType, app_model
from repro.traffic.packet import DOWNLINK, UPLINK


class TestAppType:
    def test_seven_apps(self):
        assert len(ALL_APPS) == 7

    def test_short_names_match_paper(self):
        assert AppType.BROWSING.short == "br."
        assert AppType.BITTORRENT.short == "bt."
        assert AppType.VIDEO.short == "vo."

    def test_lookup_by_string(self):
        assert app_model("chatting").app is AppType.CHATTING

    def test_lookup_by_enum(self):
        assert app_model(AppType.GAMING).app is AppType.GAMING

    def test_unknown_app_raises(self):
        with pytest.raises(ValueError):
            app_model("netflix")


class TestModelStructure:
    @pytest.mark.parametrize("app", ALL_APPS)
    def test_both_directions_defined(self, app):
        model = APP_MODELS[app]
        assert model.direction(DOWNLINK) is model.downlink
        assert model.direction(UPLINK) is model.uplink

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_mean_sizes_in_valid_range(self, app):
        model = APP_MODELS[app]
        for direction_model in (model.downlink, model.uplink):
            assert 60 <= direction_model.mean_size <= 1576

    def test_uploading_is_uplink_dominant(self):
        # Sec. IV-C: uploading is the only app with low downlink but high
        # uplink traffic — the asymmetry that survives reshaping.
        model = APP_MODELS[AppType.UPLOADING]
        down_rate = 1.0 / model.downlink.mean_interarrival * model.downlink.mean_size
        up_rate = 1.0 / model.uplink.mean_interarrival * model.uplink.mean_size
        assert up_rate > 10 * down_rate

    def test_all_other_apps_downlink_dominant(self):
        for app in ALL_APPS:
            if app is AppType.UPLOADING:
                continue
            model = APP_MODELS[app]
            down = model.downlink.mean_size / model.downlink.mean_interarrival
            up = model.uplink.mean_size / model.uplink.mean_interarrival
            assert down >= up, f"{app} should be downlink-dominant"

    def test_downloading_is_pure_mtu(self):
        mixture = APP_MODELS[AppType.DOWNLOADING].downlink.sizes
        assert len(mixture.components) == 1
        assert mixture.components[0].low >= 1546

    def test_chatting_is_small_dominated(self):
        mixture = APP_MODELS[AppType.CHATTING].downlink.sizes
        small_weight = sum(
            w for w, c in zip(mixture.weights, mixture.components) if c.high <= 232
        )
        assert small_weight > 0.7
