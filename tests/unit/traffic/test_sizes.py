"""Tests for packet-size mixtures."""

import numpy as np
import pytest

from repro.traffic.sizes import MAX_PACKET_SIZE, SizeComponent, SizeMixture


class TestSizeComponent:
    def test_sampling_respects_bounds(self, rng):
        component = SizeComponent(mean=160, std=60, low=108, high=232)
        sizes = component.sample(rng, 5000)
        assert sizes.min() >= 108
        assert sizes.max() <= 232

    def test_zero_std_is_deterministic(self, rng):
        component = SizeComponent(mean=1500, std=0)
        assert set(component.sample(rng, 10).tolist()) == {1500}

    def test_zero_count(self, rng):
        assert len(SizeComponent(mean=100, std=5).sample(rng, 0)) == 0

    def test_rejects_mean_outside_bounds(self):
        with pytest.raises(ValueError):
            SizeComponent(mean=50, std=5, low=100, high=200)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            SizeComponent(mean=150, std=5, low=200, high=100)

    def test_truncated_mean_within_bounds(self):
        component = SizeComponent(mean=160, std=30, low=108, high=232)
        assert 108 <= component.truncated_mean <= 232


class TestSizeMixture:
    def _mixture(self) -> SizeMixture:
        return SizeMixture(
            components=(
                SizeComponent(160, 30, 108, 232),
                SizeComponent(1570, 4, 1546, 1576),
            ),
            weights=(0.6, 0.4),
        )

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            SizeMixture((SizeComponent(100, 5),), (0.5,))

    def test_weights_match_components(self):
        with pytest.raises(ValueError):
            SizeMixture((SizeComponent(100, 5),), (0.5, 0.5))

    def test_mean_matches_weighted_components(self):
        mixture = self._mixture()
        assert mixture.mean == pytest.approx(0.6 * 160 + 0.4 * 1570)

    def test_sample_mean_near_analytic(self, rng):
        mixture = self._mixture()
        sizes = mixture.sample(rng, 30000)
        assert sizes.mean() == pytest.approx(mixture.mean, rel=0.02)

    def test_sample_within_global_bounds(self, rng):
        sizes = self._mixture().sample(rng, 5000)
        assert sizes.min() >= 1
        assert sizes.max() <= MAX_PACKET_SIZE

    def test_jittered_weights_still_valid(self, rng):
        jittered = self._mixture().jittered(rng, concentration=50.0)
        assert sum(jittered.weights) == pytest.approx(1.0)
        assert all(w >= 0 for w in jittered.weights)

    def test_jittered_moves_mean_but_not_far(self, rng):
        mixture = self._mixture()
        means = [mixture.jittered(rng, 80.0).mean for _ in range(50)]
        assert np.std(means) > 0
        assert abs(np.mean(means) - mixture.mean) < 100

    def test_scaled_to_mean(self):
        mixture = self._mixture()
        retargeted = mixture.scaled_to_mean(1000.0)
        assert retargeted.mean == pytest.approx(1000.0)

    def test_scaled_to_unreachable_mean_raises(self):
        with pytest.raises(ValueError):
            self._mixture().scaled_to_mean(20.0)

    def test_single_component_cannot_retarget(self):
        mixture = SizeMixture((SizeComponent(100, 5),), (1.0,))
        with pytest.raises(ValueError):
            mixture.scaled_to_mean(150.0)
