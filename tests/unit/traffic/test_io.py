"""Tests for CSV trace I/O."""

import numpy as np
import pytest

from repro.traffic.io import trace_from_csv, trace_to_csv
from repro.traffic.trace import Trace


class TestCsvRoundTrip:
    def test_roundtrip(self, simple_trace, tmp_path):
        path = str(tmp_path / "trace.csv")
        trace_to_csv(simple_trace, path)
        loaded = trace_from_csv(path, label="test")
        assert len(loaded) == len(simple_trace)
        assert np.allclose(loaded.times, simple_trace.times)
        assert np.array_equal(loaded.sizes, simple_trace.sizes)
        assert np.array_equal(loaded.directions, simple_trace.directions)
        assert loaded.label == "test"

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        trace_to_csv(Trace.empty(), path)
        assert len(trace_from_csv(path)) == 0


class TestExternalCsv:
    def test_minimal_columns(self, tmp_path):
        path = tmp_path / "minimal.csv"
        path.write_text("time,size\n1.5,100\n0.5,200\n")
        loaded = trace_from_csv(str(path))
        # Rows re-sorted; defaults applied.
        assert list(loaded.times) == [0.5, 1.5]
        assert list(loaded.directions) == [0, 0]
        assert list(loaded.channels) == [1, 1]

    def test_missing_required_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,bytes\n1.0,100\n")
        with pytest.raises(ValueError, match="size"):
            trace_from_csv(str(path))

    def test_blank_optional_cells(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("time,size,direction,iface,channel\n1.0,100,,,\n")
        loaded = trace_from_csv(str(path))
        assert loaded.ifaces[0] == 0
        assert loaded.channels[0] == 1
