"""Tests for CSV trace I/O and the corpus build/open conveniences."""

import numpy as np
import pytest

from repro.storage import ShardSet, ShardSetWriter, load_manifest
from repro.traffic.io import (
    corpus_build,
    corpus_open,
    csv_to_store,
    trace_from_csv,
    trace_to_csv,
)
from repro.traffic.trace import Trace


class TestCsvRoundTrip:
    def test_roundtrip(self, simple_trace, tmp_path):
        path = str(tmp_path / "trace.csv")
        trace_to_csv(simple_trace, path)
        loaded = trace_from_csv(path, label="test")
        assert len(loaded) == len(simple_trace)
        assert np.allclose(loaded.times, simple_trace.times)
        assert np.array_equal(loaded.sizes, simple_trace.sizes)
        assert np.array_equal(loaded.directions, simple_trace.directions)
        assert loaded.label == "test"

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        trace_to_csv(Trace.empty(), path)
        assert len(trace_from_csv(path)) == 0


class TestCsvRobustness:
    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("time,size\n\n1.0,100\n   \n2.0,200\n\n")
        loaded = trace_from_csv(str(path))
        assert list(loaded.times) == [1.0, 2.0]

    def test_whitespace_stripped_in_header_and_cells(self, tmp_path):
        path = tmp_path / "spaces.csv"
        path.write_text(" time , size , direction \n 1.0 , 100 , 1 \n")
        loaded = trace_from_csv(str(path))
        assert list(loaded.times) == [1.0]
        assert list(loaded.sizes) == [100]
        assert list(loaded.directions) == [1]

    def test_malformed_row_names_row_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,size\n1.0,100\n2.0,not-a-size\n")
        with pytest.raises(ValueError, match="row 3"):
            trace_from_csv(str(path))

    def test_missing_required_cell_names_column_and_row(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("time,size\n1.0,100\n2.0,\n")
        with pytest.raises(ValueError, match=r"row 3.*'size'"):
            trace_from_csv(str(path))

    def test_negative_time_and_bad_size_rejected_with_row(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("time,size\n-1.0,100\n")
        with pytest.raises(ValueError, match="row 2.*negative timestamp"):
            trace_from_csv(str(path))
        path.write_text("time,size\n1.0,0\n")
        with pytest.raises(ValueError, match="row 2.*non-positive"):
            trace_from_csv(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            trace_from_csv(str(path))

    def test_times_round_trip_exactly(self, tmp_path):
        # repr-based serialization: bit-exact float64 round trip, not
        # 9-decimal truncation.
        times = [0.1, 1.0 / 3.0, 2.0000000001, 1e-12 + 5.0]
        trace = Trace.from_arrays(times=sorted(times), sizes=[10] * 4)
        path = str(tmp_path / "exact.csv")
        trace_to_csv(trace, path)
        assert trace_from_csv(path).times.tobytes() == trace.times.tobytes()


class TestExternalCsv:
    def test_minimal_columns(self, tmp_path):
        path = tmp_path / "minimal.csv"
        path.write_text("time,size\n1.5,100\n0.5,200\n")
        loaded = trace_from_csv(str(path))
        # Rows re-sorted; defaults applied.
        assert list(loaded.times) == [0.5, 1.5]
        assert list(loaded.directions) == [0, 0]
        assert list(loaded.channels) == [1, 1]

    def test_missing_required_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,bytes\n1.0,100\n")
        with pytest.raises(ValueError, match="size"):
            trace_from_csv(str(path))

    def test_blank_optional_cells(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("time,size,direction,iface,channel\n1.0,100,,,\n")
        loaded = trace_from_csv(str(path))
        assert loaded.ifaces[0] == 0
        assert loaded.channels[0] == 1


class TestCorpusProvenance:
    """corpus_build / csv_to_store thread scenario + schemes through."""

    def test_corpus_build_records_schemes(self, simple_trace, tmp_path):
        schemes = [{"scheme": "padding", "params": {"block": 64}}]
        path = str(tmp_path / "built.store")
        store = corpus_build(
            path, [simple_trace], scenario={"seed": 2}, schemes=schemes
        )
        assert store.scenario == {"seed": 2}
        assert store.schemes == schemes
        assert load_manifest(path)["schemes"] == schemes

    def test_csv_to_store_records_scenario_meta_and_schemes(
        self, simple_trace, tmp_path
    ):
        csv_path = str(tmp_path / "capture.csv")
        trace_to_csv(simple_trace, csv_path)
        schemes = [{"scheme": "padding", "params": {"block": 64}}]
        store = csv_to_store(
            csv_path,
            str(tmp_path / "capture.store"),
            labels=["test"],
            scenario={"source": "csv"},
            meta={"capture": "unit"},
            schemes=schemes,
        )
        assert store.scenario == {"source": "csv"}
        assert store.meta == {"capture": "unit"}
        assert store.schemes == schemes

    def test_corpus_open_dispatches_on_format(self, simple_trace, tmp_path):
        store_path = str(tmp_path / "single.store")
        corpus_build(store_path, [simple_trace])
        shards_path = str(tmp_path / "many.shards")
        with ShardSetWriter(shards_path, shards=2) as writer:
            writer.add(simple_trace, station="sta0")
        assert not isinstance(corpus_open(store_path), ShardSet)
        federation = corpus_open(shards_path)
        assert isinstance(federation, ShardSet)
        assert len(federation) == 1
