"""Tests for packet primitives."""

import pytest

from repro.traffic.packet import DOWNLINK, UPLINK, Packet


class TestDirection:
    def test_values(self):
        assert int(DOWNLINK) == 0
        assert int(UPLINK) == 1

    def test_opposite(self):
        assert DOWNLINK.opposite is UPLINK
        assert UPLINK.opposite is DOWNLINK


class TestPacket:
    def test_defaults(self):
        packet = Packet(time=1.0, size=100)
        assert packet.direction is DOWNLINK
        assert packet.iface == 0
        assert packet.channel == 1
        assert packet.rssi is None

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError, match="size"):
            Packet(time=0.0, size=0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="time"):
            Packet(time=-0.1, size=10)

    def test_with_size_returns_copy(self):
        packet = Packet(time=1.0, size=100)
        bigger = packet.with_size(1576)
        assert bigger.size == 1576
        assert packet.size == 100

    def test_with_iface(self):
        packet = Packet(time=1.0, size=100).with_iface(2)
        assert packet.iface == 2

    def test_with_time(self):
        packet = Packet(time=1.0, size=100).with_time(9.0)
        assert packet.time == 9.0

    def test_frozen(self):
        packet = Packet(time=1.0, size=100)
        with pytest.raises(AttributeError):
            packet.size = 5  # type: ignore[misc]

    def test_equality_ignores_meta(self):
        a = Packet(time=1.0, size=100, meta={"x": 1})
        b = Packet(time=1.0, size=100, meta={"y": 2})
        assert a == b
