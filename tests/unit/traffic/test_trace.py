"""Tests for the Trace container."""

import numpy as np
import pytest

from repro.traffic.packet import DOWNLINK, UPLINK, Packet
from repro.traffic.trace import Trace, concat_traces, merge_traces


class TestConstruction:
    def test_from_arrays_defaults(self):
        trace = Trace.from_arrays([0.0, 1.0], [10, 20])
        assert len(trace) == 2
        assert list(trace.directions) == [0, 0]
        assert list(trace.ifaces) == [0, 0]

    def test_rejects_unsorted_times(self):
        with pytest.raises(ValueError, match="sorted"):
            Trace.from_arrays([1.0, 0.0], [10, 20])

    def test_sort_flag_sorts(self):
        trace = Trace.from_arrays([1.0, 0.0], [10, 20], sort=True)
        assert list(trace.sizes) == [20, 10]

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="non-negative"):
            Trace.from_arrays([-1.0, 0.0], [10, 20])

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError, match="positive"):
            Trace.from_arrays([0.0], [0])

    def test_rejects_column_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            Trace.from_arrays([0.0, 1.0], [10])

    def test_from_packets_sorts(self):
        packets = [Packet(time=2.0, size=5), Packet(time=1.0, size=7)]
        trace = Trace.from_packets(packets)
        assert list(trace.sizes) == [7, 5]

    def test_empty(self):
        trace = Trace.empty("x")
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.label == "x"


class TestAccessors:
    def test_packet_view_roundtrip(self, simple_trace):
        packet = simple_trace.packet(1)
        assert packet.time == 0.5
        assert packet.size == 1500
        assert packet.direction is DOWNLINK

    def test_iteration(self, simple_trace):
        packets = list(simple_trace)
        assert len(packets) == 8
        assert packets[2].direction is UPLINK

    def test_duration(self, simple_trace):
        assert simple_trace.duration == pytest.approx(3.5)

    def test_total_bytes(self, simple_trace):
        assert simple_trace.total_bytes == sum([100, 1500, 200, 1400, 300, 1300, 400, 1200])

    def test_bytes_in_direction(self, simple_trace):
        down = simple_trace.bytes_in_direction(DOWNLINK)
        up = simple_trace.bytes_in_direction(UPLINK)
        assert down + up == simple_trace.total_bytes
        assert down == 100 + 1500 + 300 + 1300


class TestTransforms:
    def test_direction_view(self, simple_trace):
        view = simple_trace.direction_view(UPLINK)
        assert len(view) == 4
        assert set(view.directions.tolist()) == {1}

    def test_select_requires_matching_mask(self, simple_trace):
        with pytest.raises(ValueError, match="mask"):
            simple_trace.select(np.ones(3, dtype=bool))

    def test_time_slice_half_open(self, simple_trace):
        piece = simple_trace.time_slice(0.5, 1.5)
        assert list(piece.times) == [0.5, 1.0]

    def test_time_slice_rejects_reversed(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.time_slice(2.0, 1.0)

    def test_with_ifaces_and_split(self, simple_trace):
        assigned = simple_trace.with_ifaces(np.array([0, 1, 0, 1, 2, 2, 0, 1]))
        flows = assigned.split_by_iface()
        assert sorted(flows) == [0, 1, 2]
        assert sum(len(f) for f in flows.values()) == len(simple_trace)

    def test_with_ifaces_length_check(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.with_ifaces(np.zeros(3, dtype=np.int16))

    def test_with_sizes(self, simple_trace):
        padded = simple_trace.with_sizes(np.full(8, 1576))
        assert padded.total_bytes == 8 * 1576
        assert simple_trace.sizes[0] == 100  # original untouched

    def test_with_label(self, simple_trace):
        assert simple_trace.with_label("other").label == "other"

    def test_shifted(self, simple_trace):
        shifted = simple_trace.shifted(10.0)
        assert shifted.times[0] == 10.0
        assert shifted.duration == simple_trace.duration

    def test_shift_below_zero_raises(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.shifted(-1.0)

    def test_iface_indices(self, simple_trace):
        assert simple_trace.iface_indices() == [0]


class TestSerialization:
    def test_jsonl_roundtrip(self, simple_trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        simple_trace.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        assert len(loaded) == len(simple_trace)
        assert np.array_equal(loaded.times, simple_trace.times)
        assert np.array_equal(loaded.sizes, simple_trace.sizes)
        assert np.array_equal(loaded.directions, simple_trace.directions)
        assert loaded.label == "test"

    def test_jsonl_preserves_rssi(self, tmp_path):
        trace = Trace.from_arrays([0.0], [10], rssi=[-55.5])
        path = str(tmp_path / "r.jsonl")
        trace.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        assert loaded.rssi[0] == pytest.approx(-55.5)


class TestCombinators:
    def test_merge_sorts_globally(self):
        a = Trace.from_arrays([0.0, 2.0], [1, 2])
        b = Trace.from_arrays([1.0, 3.0], [3, 4])
        merged = merge_traces([a, b])
        assert list(merged.sizes) == [1, 3, 2, 4]

    def test_merge_empty_list(self):
        assert len(merge_traces([])) == 0

    def test_concat_shifts_sequentially(self):
        a = Trace.from_arrays([0.0, 1.0], [1, 2])
        b = Trace.from_arrays([0.0, 1.0], [3, 4])
        joined = concat_traces([a, b], gap=0.5)
        assert joined.times[2] == pytest.approx(1.5)
        assert len(joined) == 4

    def test_concat_empty(self):
        assert len(concat_traces([])) == 0
