"""Tests for trace statistics."""

import numpy as np
import pytest

from repro.traffic.packet import DOWNLINK, UPLINK
from repro.traffic.stats import (
    empirical_cdf,
    interarrival_times,
    mean_interarrival,
    size_histogram,
    summarize_trace,
)
from repro.traffic.trace import Trace


class TestInterarrival:
    def test_basic_gaps(self):
        gaps = interarrival_times(np.array([0.0, 1.0, 3.0]), idle_cutoff=None)
        assert list(gaps) == [1.0, 2.0]

    def test_idle_filtering(self):
        # Sec. IV-B: gaps beyond 5 s are excluded.
        gaps = interarrival_times(np.array([0.0, 1.0, 10.0]), idle_cutoff=5.0)
        assert list(gaps) == [1.0]

    def test_under_two_points(self):
        assert len(interarrival_times(np.array([1.0]))) == 0

    def test_mean_interarrival_nan_for_sparse(self):
        trace = Trace.from_arrays([0.0], [10])
        assert np.isnan(mean_interarrival(trace))

    def test_mean_interarrival_filters_idle(self):
        trace = Trace.from_arrays([0.0, 1.0, 20.0], [1, 1, 1])
        assert mean_interarrival(trace, idle_cutoff=5.0) == pytest.approx(1.0)


class TestHistogramAndCdf:
    def test_histogram_counts_total(self, simple_trace):
        _, counts = size_histogram(simple_trace, bin_width=100)
        assert counts.sum() == len(simple_trace)

    def test_histogram_rejects_bad_width(self, simple_trace):
        with pytest.raises(ValueError):
            size_histogram(simple_trace, bin_width=0)

    def test_cdf_monotone_and_bounded(self, simple_trace):
        grid, cdf = empirical_cdf(simple_trace.sizes)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_cdf_of_empty(self):
        grid, cdf = empirical_cdf(np.array([]))
        assert np.all(cdf == 0)


class TestSummarize:
    def test_direction_selection(self, simple_trace):
        down = summarize_trace(simple_trace, DOWNLINK)
        up = summarize_trace(simple_trace, UPLINK)
        assert down.packet_count == 4
        assert up.packet_count == 4
        assert down.mean_size == pytest.approx((100 + 1500 + 300 + 1300) / 4)

    def test_both_directions(self, simple_trace):
        combined = summarize_trace(simple_trace, direction=None)
        assert combined.packet_count == 8

    def test_empty_summary_is_nan(self):
        summary = summarize_trace(Trace.empty())
        assert summary.packet_count == 0
        assert np.isnan(summary.mean_size)

    def test_as_row(self, simple_trace):
        row = summarize_trace(simple_trace).as_row()
        assert row[0] == 4
