"""Calibration tests: generated traffic must match Table I's published stats.

These tests pin the substitution documented in DESIGN.md: since the
paper's real traces are unavailable, the synthetic models must land near
the per-application mean packet size and mean interarrival the paper
reports (Table I, "Original" column, AP -> user direction).
"""

import pytest

from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator
from repro.traffic.stats import summarize_trace

#: (mean downlink size in bytes, mean downlink interarrival in seconds)
TABLE1_ORIGINAL = {
    AppType.BROWSING: (1013.2, 0.0284),
    AppType.CHATTING: (269.1, 0.9901),
    AppType.GAMING: (459.5, 0.3084),
    AppType.DOWNLOADING: (1575.3, 0.0023),
    AppType.UPLOADING: (132.8, 0.0301),
    AppType.VIDEO: (1547.6, 0.0119),
    AppType.BITTORRENT: (962.04, 0.0247),
}


@pytest.fixture(scope="module")
def summaries():
    generator = TrafficGenerator(seed=7, rate_sigma=0.0, size_jitter=0.0, drift_sigma=0.0)
    return {
        app: summarize_trace(generator.generate(app, duration=240.0))
        for app in AppType
    }


@pytest.mark.parametrize("app", list(AppType))
def test_mean_size_matches_table1(summaries, app):
    measured = summaries[app].mean_size
    target = TABLE1_ORIGINAL[app][0]
    assert measured == pytest.approx(target, rel=0.06), (
        f"{app.value}: measured {measured:.1f} B vs Table I {target} B"
    )


@pytest.mark.parametrize("app", list(AppType))
def test_mean_interarrival_matches_table1(summaries, app):
    measured = summaries[app].mean_interarrival
    target = TABLE1_ORIGINAL[app][1]
    # Timing is inherently noisier than sizes; video's chunked model
    # trades interarrival fidelity for the paper's burst structure
    # (documented in EXPERIMENTS.md), so it gets a wider band.
    tolerance = 0.55 if app is AppType.VIDEO else 0.25
    assert measured == pytest.approx(target, rel=tolerance), (
        f"{app.value}: measured {measured:.4f} s vs Table I {target} s"
    )


def test_size_modes_match_figure1(summaries):
    """Sec. III-C-3: main packet sizes concentrate in [108, 232] and [1546, 1576]."""
    generator = TrafficGenerator(seed=8, rate_sigma=0.0, size_jitter=0.0, drift_sigma=0.0)
    trace = generator.generate(AppType.BITTORRENT, duration=120.0)
    sizes = trace.direction_view(0).sizes if hasattr(trace, "direction_view") else trace.sizes
    small = ((sizes >= 108) & (sizes <= 232)).mean()
    full = ((sizes >= 1546) & (sizes <= 1576)).mean()
    assert small + full > 0.7, "BT mass should concentrate in the two modes"
