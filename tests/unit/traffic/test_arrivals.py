"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.traffic.arrivals import (
    BurstyArrivals,
    ConstantRateArrivals,
    PoissonArrivals,
)


@pytest.mark.parametrize(
    "process",
    [
        ConstantRateArrivals(interval=0.01),
        PoissonArrivals(interval=0.01),
        BurstyArrivals(burst_interval=1.0, burst_size=20.0, within_gap=0.005),
    ],
    ids=["cbr", "poisson", "bursty"],
)
class TestCommonBehaviour:
    def test_sorted_and_bounded(self, process, rng):
        times = process.sample(rng, 30.0)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0
        assert times.max() < 30.0

    def test_expected_count_roughly_matches(self, process, rng):
        times = process.sample(rng, 60.0)
        expected = process.expected_count(60.0)
        assert expected * 0.5 < len(times) < expected * 1.8

    def test_scaled_changes_rate(self, process, rng):
        slower = process.scaled(2.0)
        assert slower.mean_interarrival == pytest.approx(
            2.0 * process.mean_interarrival
        )

    def test_scaled_rejects_non_positive(self, process, rng):
        with pytest.raises(ValueError):
            process.scaled(0.0)

    def test_duration_must_be_positive(self, process, rng):
        with pytest.raises(ValueError):
            process.sample(rng, 0.0)


class TestConstantRate:
    def test_low_jitter_is_regular(self, rng):
        times = ConstantRateArrivals(interval=0.1, jitter_shape=400.0).sample(rng, 30.0)
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() < 0.1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ConstantRateArrivals(interval=-1.0)
        with pytest.raises(ValueError):
            ConstantRateArrivals(interval=1.0, jitter_shape=0.0)


class TestPoisson:
    def test_gap_cv_near_one(self, rng):
        times = PoissonArrivals(interval=0.05).sample(rng, 120.0)
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.15)


class TestBursty:
    def test_mean_interarrival_formula(self):
        process = BurstyArrivals(burst_interval=2.0, burst_size=40.0, within_gap=0.01)
        assert process.mean_interarrival == pytest.approx(0.05)

    def test_has_burst_structure(self, rng):
        process = BurstyArrivals(burst_interval=5.0, burst_size=50.0, within_gap=0.002)
        times = process.sample(rng, 120.0)
        gaps = np.diff(times)
        # Bimodal gaps: many tiny within-burst gaps, a few large ones.
        assert (gaps < 0.05).mean() > 0.8
        assert gaps.max() > 1.0

    def test_empty_when_no_burst_fits(self, rng):
        process = BurstyArrivals(burst_interval=1e9, burst_size=5.0, within_gap=0.01)
        assert len(process.sample(rng, 1.0)) == 0

    def test_rejects_bad_burst_size(self):
        with pytest.raises(ValueError):
            BurstyArrivals(burst_interval=1.0, burst_size=0.5, within_gap=0.01)
