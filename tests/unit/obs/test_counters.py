"""Unit tests for the deterministic metrics registry and its routing."""

import pickle

import pytest

from repro.obs import (
    MetricsRegistry,
    active_metrics,
    add,
    bucket_label,
    collecting,
    gauge,
    is_unattributed,
    observe,
    unattributed,
)
from repro.obs.counters import replay_metrics


class TestBucketLabel:
    @pytest.mark.parametrize(
        ("value", "label"),
        [
            (-3, "0"),
            (0, "0"),
            (1, "1"),
            (2, "2-3"),
            (3, "2-3"),
            (4, "4-7"),
            (7, "4-7"),
            (8, "8-15"),
            (1024, "1024-2047"),
        ],
    )
    def test_power_of_two_buckets(self, value, label):
        assert bucket_label(value) == label


class TestMetricsRegistry:
    def test_count_gauge_observe(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.count("a", 4)
        registry.gauge_max("g", 10.0)
        registry.gauge_max("g", 3.0)  # lower: ignored
        registry.observe("h", 5)
        registry.observe("h", 6)
        registry.observe("h", 1)
        assert registry.counters == {"a": 5}
        assert registry.gauges == {"g": 10.0}
        assert registry.histograms == {"h": {"4-7": 2, "1": 1}}

    def test_merge_sums_counters_maxes_gauges_sums_buckets(self):
        left = MetricsRegistry({"a": 1}, {"g": 2.0}, {"h": {"1": 1}})
        right = MetricsRegistry({"a": 2, "b": 7}, {"g": 5.0}, {"h": {"1": 3}})
        merged = left.merge(right)
        assert merged.counters == {"a": 3, "b": 7}
        assert merged.gauges == {"g": 5.0}
        assert merged.histograms == {"h": {"1": 4}}
        # merge() leaves its inputs untouched
        assert left.counters == {"a": 1}

    def test_merged_folds_iterables(self):
        parts = [MetricsRegistry({"a": i}) for i in (1, 2, 3)]
        assert MetricsRegistry.merged(parts).counters == {"a": 6}
        assert MetricsRegistry.merged([]).counters == {}

    def test_as_dict_round_trips_and_sorts(self):
        registry = MetricsRegistry()
        registry.count("z")
        registry.count("a")
        registry.observe("h", 8)
        registry.observe("h", 2)
        view = registry.as_dict()
        assert list(view["counters"]) == ["a", "z"]
        # Buckets sort numerically by their lower edge, not as strings.
        assert list(view["histograms"]["h"]) == ["2-3", "8-15"]
        assert MetricsRegistry.from_dict(view) == registry

    def test_picklable_under_any_protocol(self):
        registry = MetricsRegistry({"a": 1}, {"g": 2.0}, {"h": {"1": 1}})
        for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
            clone = pickle.loads(pickle.dumps(registry, protocol))
            assert clone == registry


class TestCollectionRouting:
    def test_helpers_no_op_without_active_registry(self):
        assert active_metrics() is None
        add("a")  # must not raise
        gauge("g", 1.0)
        observe("h", 2)

    def test_collecting_installs_and_restores(self):
        registry = MetricsRegistry()
        with collecting(registry):
            assert active_metrics() is registry
            add("a", 2)
            gauge("g", 4.0)
            observe("h", 3)
        assert active_metrics() is None
        assert registry.counters == {"a": 2}
        assert registry.gauges == {"g": 4.0}
        assert registry.histograms == {"h": {"2-3": 1}}

    def test_collecting_nests_by_save_restore(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with collecting(outer):
            add("a")
            with collecting(inner):
                add("a")
            add("a")
        assert outer.counters == {"a": 2}
        assert inner.counters == {"a": 1}

    def test_unattributed_routes_counters_to_proc_namespace(self):
        registry = MetricsRegistry()
        with collecting(registry):
            assert not is_unattributed()
            with unattributed():
                assert is_unattributed()
                add("build.work", 3)
                observe("build.sizes", 4)
                gauge("build.peak", 9.0)  # gauges are never rerouted
            add("cell.work")
        assert registry.counters == {"proc.build.work": 3, "cell.work": 1}
        assert registry.histograms == {"proc.build.sizes": {"4-7": 1}}
        assert registry.gauges == {"build.peak": 9.0}

    def test_unattributed_nests_and_does_not_double_prefix(self):
        registry = MetricsRegistry()
        with collecting(registry):
            with unattributed(), unattributed():
                add("proc.already", 1)
                add("plain", 1)
            assert not is_unattributed()
        assert registry.counters == {"proc.already": 1, "proc.plain": 1}

    def test_replay_metrics_honors_routing(self):
        captured = MetricsRegistry({"work": 2}, {"peak": 5.0}, {"sizes": {"1": 1}})
        registry = MetricsRegistry()
        with collecting(registry):
            replay_metrics(captured)
            with unattributed():
                replay_metrics(captured)
        assert registry.counters == {"work": 2, "proc.work": 2}
        assert registry.gauges == {"peak": 5.0}
        assert registry.histograms == {"sizes": {"1": 1}, "proc.sizes": {"1": 1}}
