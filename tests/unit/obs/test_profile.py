"""Unit tests for profile capture, merging, and the v1 JSON schema."""

import json
import pickle

from repro.obs import (
    PROFILE_FORMAT,
    PROFILE_VERSION,
    CellProfile,
    MetricsRegistry,
    PerfCounterSink,
    SpanNode,
    add,
    capture,
    captured,
    deterministic_view,
    gauge,
    merge_profiles,
    observe,
    profile_to_json,
    profiles_equal_deterministic,
    render_profile,
    replay,
    span,
    unattributed,
    write_profile,
)


def _cell(name: str, counters: dict, span_counts: dict | None = None) -> CellProfile:
    spans = SpanNode("run")
    for span_name, count in (span_counts or {}).items():
        spans.child(span_name).count = count
    return CellProfile(name=name, metrics=MetricsRegistry(counters), spans=spans)


class TestCapture:
    def test_capture_collects_counters_and_spans(self):
        with capture() as cap:
            with span("cell[x]"):
                add("work", 2)
                observe("fanout", 3)
                gauge("peak", 7.0)
        assert cap.metrics.counters == {"work": 2}
        assert cap.spans.children["cell[x]"].count == 1
        profile = cap.cell_profile("x")
        assert profile.name == "x"
        assert profile.metrics is cap.metrics

    def test_captured_returns_value_and_replayable_subprofile(self):
        def work():
            add("inner", 5)
            with span("apply"):
                pass
            return "value"

        value, subprofile = captured(work)
        assert value == "value"
        assert subprofile.metrics.counters == {"inner": 5}

        # Replaying twice doubles counters (logical requests) and spans.
        with capture() as cap:
            with span("cell"):
                replay(subprofile)
                replay(subprofile)
        assert cap.metrics.counters == {"inner": 10}
        assert cap.spans.children["cell"].children["apply"].count == 2

    def test_replay_none_is_a_no_op(self):
        with capture() as cap:
            replay(None)
        assert cap.metrics.counters == {}

    def test_captured_even_while_outer_capture_is_paused(self):
        # The cache stores subprofiles regardless of the outer context,
        # so a warm cache replays correctly in a later profiled run.
        with capture() as cap:
            with unattributed():
                _, subprofile = captured(lambda: add("inner"))
        assert cap.metrics.counters == {}  # nothing leaked to the outer
        assert subprofile.metrics.counters == {"inner": 1}

    def test_cell_profiles_pickle(self):
        with capture() as cap:
            with span("cell[x]"):
                add("work")
        profile = cap.cell_profile("x")
        clone = pickle.loads(pickle.dumps(profile))
        assert clone.metrics == profile.metrics
        assert clone.spans.as_dict() == profile.spans.as_dict()


class TestMergeAndSchema:
    def test_merge_profiles_skips_none_and_folds(self):
        cells = [
            _cell("a", {"work": 1, "proc.build": 1}, {"cell[a]": 1}),
            None,
            _cell("b", {"work": 2}, {"cell[b]": 1}),
        ]
        profile = merge_profiles("exp", cells)
        assert profile.experiment == "exp"
        assert profile.metrics.counters == {"work": 3, "proc.build": 1}
        assert len(profile.cells) == 2
        assert {c.name for c in profile.cells} == {"a", "b"}

    def test_payload_shape_and_process_split(self):
        profile = merge_profiles("exp", [_cell("a", {"work": 1, "proc.build": 2})])
        payload = profile_to_json(profile)
        assert payload["format"] == PROFILE_FORMAT
        assert payload["version"] == PROFILE_VERSION
        assert payload["experiment"] == "exp"
        assert payload["counters"] == {"work": 1}
        assert payload["process"]["counters"] == {"proc.build": 2}
        [cell] = payload["cells"]
        assert cell["cell"] == "a"
        assert cell["counters"] == {"work": 1}
        assert cell["process"]["counters"] == {"proc.build": 2}
        json.dumps(payload)  # JSON-serializable as-is

    def test_deterministic_view_strips_exactly_the_excluded_fields(self):
        with capture(PerfCounterSink()) as cap:
            with span("cell[x]"):
                add("work")
                add("proc.build")
                gauge("peak", 1.0)
        payload = profile_to_json(
            merge_profiles("exp", [cap.cell_profile("x")])
        )
        assert payload["spans"][0].get("seconds") is not None
        view = deterministic_view(payload)
        assert "process" not in view
        assert "seconds" not in view["spans"][0]
        assert "gauges" not in view["cells"][0]  # per-cell gauges dropped
        assert view["gauges"] == {"peak": 1.0}  # run-level max is kept
        assert view["counters"] == {"work": 1}

    def test_profiles_equal_deterministic_ignores_timing_and_process(self):
        def build(counts_proc: int, timed: bool):
            sink = PerfCounterSink() if timed else None
            with capture(sink) as cap:
                with span("cell[x]"):
                    add("work", 3)
                    add("proc.build", counts_proc)
            return profile_to_json(merge_profiles("exp", [cap.cell_profile("x")]))

        a = build(counts_proc=1, timed=False)
        b = build(counts_proc=9, timed=True)
        assert profiles_equal_deterministic(a, b)
        c = build(counts_proc=1, timed=False)
        c["counters"]["work"] = 4
        assert not profiles_equal_deterministic(a, c)


class TestRendering:
    def test_render_profile_text(self):
        with capture() as cap:
            with span("cell[x]"):
                add("work", 2)
                observe("fanout", 3)
                gauge("peak", 7.0)
                add("proc.build")
        text = render_profile(
            profile_to_json(merge_profiles("exp", [cap.cell_profile("x")]))
        )
        assert "profile: exp (repro-profile v1, 1 cell(s))" in text
        assert "cell[x] ×1" in text
        assert "work" in text and "2" in text
        assert "process counters" in text

    def test_write_profile_round_trips(self, tmp_path):
        with capture() as cap:
            add("work")
        payload = profile_to_json(merge_profiles("exp", [cap.cell_profile("x")]))
        path = tmp_path / "run.profile.json"
        write_profile(payload, str(path))
        assert json.loads(path.read_text(encoding="utf-8")) == payload
