"""Unit tests for hierarchical span recording."""

import pickle

from repro.obs import SpanNode, SpanRecorder, TimingSink, recording, span, unattributed
from repro.obs.spans import active_recorder, attach


class FakeSink(TimingSink):
    """A deterministic 'clock' for testing the timing path."""

    def __init__(self, step: float = 1.0):
        self.ticks = 0.0
        self.step = step

    def now(self) -> float:
        self.ticks += self.step
        return self.ticks


class TestSpanNode:
    def test_child_is_insertion_ordered_get_or_create(self):
        root = SpanNode("run")
        b = root.child("b")
        a = root.child("a")
        assert root.child("b") is b
        assert list(root.children) == ["b", "a"]
        assert a.count == 0

    def test_merge_in_sums_counts_and_recurses(self):
        left, right = SpanNode("x"), SpanNode("x")
        left.count = 2
        left.child("inner").count = 1
        right.count = 3
        right.child("inner").count = 4
        right.child("other").count = 1
        left.merge_in(right)
        assert left.count == 5
        assert left.children["inner"].count == 5
        assert left.children["other"].count == 1

    def test_seconds_merge_only_when_measured(self):
        left, right = SpanNode("x"), SpanNode("x")
        left.merge_in(right)
        assert left.seconds is None  # None + None stays None
        right.add_seconds(0.5)
        left.merge_in(right)
        assert left.seconds == 0.5

    def test_as_dict_omits_seconds_when_untimed(self):
        node = SpanNode("x")
        node.count = 1
        assert "seconds" not in node.as_dict()
        node.add_seconds(0.25)
        assert node.as_dict()["seconds"] == 0.25

    def test_nodes_pickle(self):
        node = SpanNode("x")
        node.count = 2
        node.child("y").count = 1
        clone = pickle.loads(pickle.dumps(node))
        assert clone.as_dict() == node.as_dict()


class TestSpanRecorder:
    def test_nesting_builds_the_tree(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
            with recorder.span("inner"):
                pass
        with recorder.span("outer"):
            pass
        outer = recorder.root.children["outer"]
        assert outer.count == 2
        assert outer.children["inner"].count == 2
        assert outer.seconds is None

    def test_sink_measures_durations(self):
        recorder = SpanRecorder(FakeSink())
        with recorder.span("timed"):
            pass
        node = recorder.root.children["timed"]
        assert node.seconds == 1.0  # one tick between enter and exit

    def test_current_tracks_the_stack(self):
        recorder = SpanRecorder()
        assert recorder.current is recorder.root
        with recorder.span("a") as node:
            assert recorder.current is node
        assert recorder.current is recorder.root


class TestModuleHelpers:
    def test_span_no_ops_without_recorder(self):
        assert active_recorder() is None
        with span("orphan") as node:
            assert node is None

    def test_recording_installs_and_restores(self):
        recorder = SpanRecorder()
        with recording(recorder):
            assert active_recorder() is recorder
            with span("a"):
                with span("b"):
                    pass
        assert active_recorder() is None
        assert recorder.root.children["a"].children["b"].count == 1

    def test_span_paused_inside_unattributed(self):
        recorder = SpanRecorder()
        with recording(recorder):
            with unattributed():
                with span("hidden") as node:
                    assert node is None
        assert recorder.root.children == {}

    def test_attach_replays_a_subtree_under_the_open_span(self):
        captured = SpanNode("run")
        captured.child("scheme.apply[or]").count = 3
        recorder = SpanRecorder()
        with recording(recorder):
            with span("cell"):
                attach(captured)
                attach(captured)
        cell = recorder.root.children["cell"]
        assert cell.children["scheme.apply[or]"].count == 6

    def test_attach_no_ops_when_off_or_paused(self):
        captured = SpanNode("run")
        captured.child("x").count = 1
        attach(captured)  # no recorder: no-op
        recorder = SpanRecorder()
        with recording(recorder):
            with unattributed():
                attach(captured)
        assert recorder.root.children == {}
