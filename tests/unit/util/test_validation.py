"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    require,
    require_in_range,
    require_positive,
    require_probability_vector,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(0.5, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(value, "x")


class TestRequireInRange:
    def test_accepts_bounds(self):
        require_in_range(0.0, 0.0, 1.0, "p")
        require_in_range(1.0, 0.0, 1.0, "p")

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range(1.5, 0.0, 1.0, "p")


class TestRequireProbabilityVector:
    def test_returns_normalized_copy(self):
        out = require_probability_vector([0.25, 0.75], "w")
        assert np.allclose(out.sum(), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            require_probability_vector([-0.1, 1.1], "w")

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            require_probability_vector([0.4, 0.4], "w")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            require_probability_vector([], "w")

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            require_probability_vector(np.ones((2, 2)) / 4, "w")
