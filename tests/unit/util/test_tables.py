"""Tests for ASCII table rendering."""

import pytest

from repro.util.tables import format_float, format_table


class TestFormatFloat:
    def test_fixed_digits(self):
        assert format_float(3.14159, 2) == "3.14"

    def test_none_renders_dash(self):
        assert format_float(None) == "-"

    def test_nan_renders_dash(self):
        assert format_float(float("nan")) == "-"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "v"], [["a", 1.0], ["long-name", 22.5]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all("|" in line for line in lines if "-+-" not in line)

    def test_title_prepended(self):
        table = format_table(["a"], [["x"]], title="Table I")
        assert table.splitlines()[0] == "Table I"

    def test_float_formatting(self):
        table = format_table(["v"], [[1.23456]], float_digits=3)
        assert "1.235" in table

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="row length"):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table
