"""Tests for the deterministic RNG tree."""

import numpy as np

from repro.util.rng import RngFactory, derive_rng


class TestDeriveRng:
    def test_same_path_same_stream(self):
        a = derive_rng(7, "x", "y")
        b = derive_rng(7, "x", "y")
        assert a.integers(1 << 40) == b.integers(1 << 40)

    def test_different_seed_different_stream(self):
        a = derive_rng(7, "x")
        b = derive_rng(8, "x")
        assert list(a.integers(1 << 40, size=4)) != list(b.integers(1 << 40, size=4))

    def test_different_path_different_stream(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "y")
        assert list(a.integers(1 << 40, size=4)) != list(b.integers(1 << 40, size=4))

    def test_path_order_matters(self):
        a = derive_rng(7, "x", "y")
        b = derive_rng(7, "y", "x")
        assert list(a.integers(1 << 40, size=4)) != list(b.integers(1 << 40, size=4))

    def test_returns_numpy_generator(self):
        assert isinstance(derive_rng(0), np.random.Generator)


class TestRngFactory:
    def test_get_is_reproducible(self):
        factory = RngFactory(seed=3)
        x = factory.get("a", "b").random()
        y = factory.get("a", "b").random()
        assert x == y

    def test_child_extends_path(self):
        root = RngFactory(seed=3)
        child = root.child("sub")
        assert child.path == ("sub",)
        assert child.get("leaf").random() == root.get("sub", "leaf").random()

    def test_nested_children(self):
        factory = RngFactory(seed=3).child("a").child("b", "c")
        assert factory.path == ("a", "b", "c")

    def test_distinct_names_are_independent(self):
        factory = RngFactory(seed=3)
        streams = [factory.get(name).random() for name in ("u", "v", "w")]
        assert len(set(streams)) == 3

    def test_repr_mentions_seed(self):
        assert "seed=5" in repr(RngFactory(seed=5))

    def test_adding_consumer_does_not_shift_existing(self):
        # Name-based derivation: creating extra streams must not perturb
        # previously derived ones.
        factory = RngFactory(seed=11)
        before = factory.get("existing").random()
        factory.get("new-consumer").random()
        after = factory.get("existing").random()
        assert before == after
