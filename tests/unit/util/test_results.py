"""Tests for structured experiment artifacts (util/results.py)."""

import json

import numpy as np
import pytest

from repro.util.results import ExperimentResult, json_safe, rows_to_csv


@pytest.fixture
def result() -> ExperimentResult:
    return ExperimentResult(
        experiment="table2",
        title="Table II",
        headers=("app", "Original", "OR"),
        rows=(("browsing", 37.77, 1.9), ("Mean", 83.24, float("nan"))),
        params={"seed": 0, "window": 5.0},
        extras={"note": "unit"},
    )


class TestJsonSafe:
    def test_numpy_scalars_become_numbers(self):
        assert json_safe(np.float64(1.5)) == 1.5
        assert json_safe(np.int32(3)) == 3
        assert isinstance(json_safe(np.int64(3)), int)

    def test_arrays_and_tuples_become_lists(self):
        assert json_safe(np.arange(3)) == [0, 1, 2]
        assert json_safe((1, (2, 3))) == [1, [2, 3]]

    def test_non_finite_floats_become_null(self):
        assert json_safe(float("nan")) is None
        assert json_safe(float("inf")) is None
        assert json_safe(np.float64("nan")) is None

    def test_mapping_keys_stringified(self):
        assert json_safe({1: "a"}) == {"1": "a"}

    def test_bool_passes_through_unmolested(self):
        assert json_safe(True) is True
        assert json_safe(False) is False

    def test_unknown_objects_fall_back_to_str(self):
        class Odd:
            def __str__(self):
                return "odd"

        assert json_safe(Odd()) == "odd"


class TestRowsToCsv:
    def test_round_trips_through_csv_module(self):
        text = rows_to_csv(["a", "b"], [["x", 1], ["y,z", 2.5]])
        lines = text.strip().split("\n")
        assert lines[0] == "a,b"
        assert lines[2] == '"y,z",2.5'

    def test_none_rendered_empty(self):
        # A single empty field is quoted ("") so the record stays non-blank.
        assert rows_to_csv(["a", "b"], [[None, 1]]).strip().split("\n")[1] == ",1"

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            rows_to_csv(["a", "b"], [["only-one"]])


class TestExperimentResult:
    def test_text_rendering_is_a_table(self, result):
        text = result.to_text()
        assert text.startswith("Table II")
        assert "browsing" in text and "37.77" in text
        # NaN renders as the tables' usual dash.
        assert " -" in text.splitlines()[-1]

    def test_json_rendering_is_parseable_with_provenance(self, result):
        payload = json.loads(result.to_json())
        assert payload["experiment"] == "table2"
        assert payload["params"] == {"seed": 0, "window": 5.0}
        assert payload["headers"] == ["app", "Original", "OR"]
        assert payload["rows"][0] == ["browsing", 37.77, 1.9]
        assert payload["rows"][1][2] is None  # NaN -> null
        assert payload["extras"] == {"note": "unit"}

    def test_csv_rendering_has_header_plus_rows(self, result):
        lines = result.to_csv().strip().split("\n")
        assert len(lines) == 3
        assert lines[0] == "app,Original,OR"

    def test_render_rejects_unknown_format(self, result):
        with pytest.raises(ValueError, match="unknown format"):
            result.render("yaml")

    def test_write_infers_format_from_suffix(self, result, tmp_path):
        path = tmp_path / "out.json"
        assert result.write(str(path)) == "json"
        assert json.loads(path.read_text())["experiment"] == "table2"

    def test_write_unknown_suffix_defaults_to_text(self, result, tmp_path):
        path = tmp_path / "out.dat"
        assert result.write(str(path)) == "text"
        assert path.read_text().startswith("Table II")

    def test_write_explicit_format_wins(self, result, tmp_path):
        path = tmp_path / "out.dat"
        assert result.write(str(path), fmt="csv") == "csv"
        assert path.read_text().startswith("app,Original,OR")
