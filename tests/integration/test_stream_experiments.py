"""End-to-end streaming acceptance: parity with batch, CLI arms race.

The subsystem's acceptance bars, verbatim:

* for a deterministic scenario, an ``OnlineAttack`` over a
  ``PacketStream`` replay produces the same window predictions
  bit-for-bit as the batch ``AttackPipeline.evaluate_flows`` path given
  identical training data and window boundaries;
* ``repro run arms_race`` completes end-to-end under both serial and
  ``--jobs 2`` execution with identical results.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import parallel
from repro.experiments.registry import ScenarioParams
from repro.experiments.runner import ExperimentRunner
from repro.stream import OnlineAttack, PacketStream

TINY = ScenarioParams(
    seed=5, train_duration=30.0, eval_duration=20.0, train_sessions=1, eval_sessions=1
)

TINY_FLAGS = [
    "--seed", "5",
    "--train-duration", "30", "--eval-duration", "20",
    "--train-sessions", "1", "--eval-sessions", "1",
]


@pytest.fixture(autouse=True)
def fresh_worker_state():
    parallel.clear_worker_state()
    yield
    parallel.clear_worker_state()


class TestStreamingParity:
    """Online evaluation over a replayed capture == the batch pipeline."""

    @pytest.mark.parametrize("scheme", ["Original", "OR", "RR"])
    def test_window_predictions_match_evaluate_flows(self, scheme):
        runner = ExperimentRunner(TINY.build())
        pipeline = runner.pipeline(5.0)
        reshaper = runner.schemes(3)[scheme]

        flows_by_label = {}
        streams = []
        for label, traces in runner.scenario.evaluation_by_label().items():
            flows = []
            for trace in traces:
                flows.extend(runner.observable_flows(reshaper, trace))
            flows_by_label[label] = flows
            streams.extend(
                PacketStream.replay(flow, station=f"{label}/f{index}", label=label)
                for index, flow in enumerate(flows)
            )

        attacker = OnlineAttack.from_pipeline(pipeline)
        attacker.consume(PacketStream.merge(streams))
        batch = pipeline.evaluate_flows(flows_by_label, cache=runner.window_cache)

        streaming = attacker.report()
        assert streaming.confusion.classes == batch.confusion.classes
        np.testing.assert_array_equal(
            streaming.confusion.matrix, batch.confusion.matrix
        )
        assert streaming.mean_accuracy == batch.mean_accuracy

    def test_per_window_prediction_sequences_match(self):
        """Stronger than matrix equality: flow-by-flow label sequences."""
        runner = ExperimentRunner(TINY.build())
        pipeline = runner.pipeline(5.0)
        reshaper = runner.schemes(3)["OR"]
        from repro.analysis.batch import flow_feature_matrix

        for label, traces in runner.scenario.evaluation_by_label().items():
            for trace in traces:
                for index, flow in enumerate(runner.observable_flows(reshaper, trace)):
                    attacker = OnlineAttack.from_pipeline(pipeline)
                    attacker.consume(
                        PacketStream.replay(flow, station="f", label=label)
                    )
                    expected = pipeline.classify_matrix(
                        flow_feature_matrix(flow, 5.0, 2)
                    )
                    assert [p.predicted for p in attacker.predictions] == expected


class TestStreamReplayExperiment:
    def test_every_scheme_reports_parity(self):
        result = parallel.run_experiment("stream_replay", TINY)
        for scheme in result.schemes:
            assert result.identical(scheme), f"{scheme} diverged from batch"

    def test_serial_matches_jobs2(self):
        serial = parallel.run_experiment_result("stream_replay", TINY)
        parallel.clear_worker_state()
        fanned = parallel.run_experiment_result("stream_replay", TINY, jobs=2)
        assert json.loads(serial.to_json()) == json.loads(fanned.to_json())


class TestDriftExperiment:
    def test_online_mode_actually_trains(self):
        result = parallel.run_experiment(
            "drift", TINY, options={"phase_duration": 20.0}
        )
        assert result.trained["frozen"] == 0
        assert result.trained["online"] > 0
        assert result.windows["frozen"] == result.windows["online"]

    def test_bayes_learner_runs(self):
        result = parallel.run_experiment(
            "drift", TINY, options={"phase_duration": 15.0, "learner": "bayes"}
        )
        assert result.trained["online"] > 0


class TestArmsRaceEndToEnd:
    """Acceptance: `repro run arms_race` serial == --jobs 2."""

    @pytest.mark.smoke
    def test_cli_serial_and_jobs2_identical(self, capsys, tmp_path):
        serial_path = tmp_path / "serial.json"
        fanned_path = tmp_path / "fanned.json"
        assert (
            main(["run", "arms_race", *TINY_FLAGS, "--set", "threshold=0.6",
                  "--output", str(serial_path)])
            == 0
        )
        parallel.clear_worker_state()
        assert (
            main(["run", "arms_race", *TINY_FLAGS, "--set", "threshold=0.6",
                  "--jobs", "2", "--output", str(fanned_path)])
            == 0
        )
        serial = json.loads(serial_path.read_text())
        fanned = json.loads(fanned_path.read_text())
        assert serial == fanned
        assert [row[0] for row in serial["rows"]] == ["static", "adaptive"]

    def test_adaptive_row_shows_the_loop_ran(self):
        result = parallel.run_experiment(
            "arms_race", TINY, options={"threshold": 0.5, "cooldown": 5.0}
        )
        static = result.outcomes["static"]
        adaptive = result.outcomes["adaptive"]
        assert static.reallocations == 0
        assert adaptive.reallocations > 0
        assert adaptive.flows_observed > static.flows_observed
