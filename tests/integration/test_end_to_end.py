"""Integration: generate -> defend -> attack, asserting the paper's shape.

These run a reduced-scale version of the Sec. IV evaluation and assert
the *qualitative* results the paper reports: OR collapses classification
while the naive schemes barely dent it; reshaping costs zero bytes while
padding costs hundreds of percent.
"""

import pytest

from repro.analysis.attack import AttackPipeline
from repro.core.engine import ReshapingEngine
from repro.core.schedulers import (
    OrthogonalReshaper,
    RandomReshaper,
    RoundRobinReshaper,
)
from repro.defenses.overhead import overhead_percent
from repro.defenses.padding import PacketPadding
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator


@pytest.fixture(scope="module")
def setup():
    generator = TrafficGenerator(seed=42)
    train = {
        app.value: [generator.generate(app, 120.0, session=s) for s in range(3)]
        for app in AppType
    }
    evaluation = {
        app: [generator.generate(app, 90.0, session=50 + s) for s in range(2)]
        for app in AppType
    }
    pipeline = AttackPipeline(window=5.0, seed=42)
    pipeline.train(train)
    return pipeline, evaluation


def _evaluate(pipeline, evaluation, reshaper) -> float:
    flows = {}
    for app, traces in evaluation.items():
        app_flows = []
        for trace in traces:
            if reshaper is None:
                app_flows.append(trace)
            else:
                app_flows.extend(ReshapingEngine(reshaper).apply(trace).observable_flows)
        flows[app.value] = app_flows
    return pipeline.evaluate_flows(flows).mean_accuracy


class TestHeadlineResult:
    def test_or_beats_naive_schedulers(self, setup):
        pipeline, evaluation = setup
        original = _evaluate(pipeline, evaluation, None)
        random_acc = _evaluate(pipeline, evaluation, RandomReshaper(3, seed=1))
        rr_acc = _evaluate(pipeline, evaluation, RoundRobinReshaper(3))
        or_acc = _evaluate(pipeline, evaluation, OrthogonalReshaper.paper_default())
        # The paper's ordering: Original > {RA, RR} > OR, with OR far below.
        assert original > 70.0
        assert or_acc < original - 20.0
        assert or_acc < random_acc
        assert or_acc < rr_acc

    def test_naive_schemes_barely_help(self, setup):
        pipeline, evaluation = setup
        original = _evaluate(pipeline, evaluation, None)
        random_acc = _evaluate(pipeline, evaluation, RandomReshaper(3, seed=1))
        # RA stays within ~20 points of the undefended accuracy.
        assert random_acc > original - 20.0

    def test_or_per_app_pattern(self, setup):
        pipeline, evaluation = setup
        flows = {}
        for app, traces in evaluation.items():
            app_flows = []
            for trace in traces:
                engine = ReshapingEngine(OrthogonalReshaper.paper_default())
                app_flows.extend(engine.apply(trace).observable_flows)
            flows[app.value] = app_flows
        report = pipeline.evaluate_flows(flows)
        accuracy = report.accuracy_by_class
        # Sec. IV-C: downloading/uploading/chatting remain identifiable...
        assert accuracy["downloading"] > 75.0
        assert accuracy["uploading"] > 60.0
        assert accuracy["chatting"] > 60.0
        # ...while BT collapses.
        assert accuracy["bittorrent"] < 40.0

    def test_or_raises_false_positives(self, setup):
        pipeline, evaluation = setup
        original_flows = {
            app.value: list(traces) for app, traces in evaluation.items()
        }
        or_flows = {}
        for app, traces in evaluation.items():
            engine = ReshapingEngine(OrthogonalReshaper.paper_default())
            or_flows[app.value] = [
                flow for trace in traces for flow in engine.apply(trace).observable_flows
            ]
        fp_original = pipeline.evaluate_flows(original_flows).mean_false_positive
        fp_or = pipeline.evaluate_flows(or_flows).mean_false_positive
        # Table IV: OR multiplies the mean FP rate.
        assert fp_or > fp_original


class TestEfficiency:
    def test_reshaping_free_padding_expensive(self, setup):
        _, evaluation = setup
        chat = evaluation[AppType.CHATTING][0]
        engine = ReshapingEngine(OrthogonalReshaper.paper_default())
        result = engine.apply(chat)
        assert result.data_overhead_bytes == 0

        padded = PacketPadding().apply(chat)
        # Table VI: chatting padding overhead ~486%.
        assert overhead_percent(padded) > 200.0
