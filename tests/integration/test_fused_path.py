"""Integration: the fused evaluation path end to end.

Three claims ride on the fused kernels at runner level.  Reports are
bit-identical to the legacy ``observable_flows`` → ``evaluate_flows``
loop for every legacy scheme.  Telemetry proves the route taken: a
table run over fusable schemes records ``batch.fused_plans`` and zero
``batch.fallback_flows``, while a morphing run records the fallback.
And the CLI profile carries the counters out, so CI can assert the
fused path stayed live from a profile JSON alone.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.analysis.batch import WindowCache
from repro.cli import main
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import EvaluationScenario
from repro.schemes import LEGACY_SCHEME_SPECS

pytestmark = pytest.mark.smoke

TINY_FLAGS = [
    "--seed", "5",
    "--train-duration", "30", "--eval-duration", "20",
    "--train-sessions", "1", "--eval-sessions", "1",
]


@pytest.fixture(scope="module")
def scenario():
    return EvaluationScenario(
        seed=5,
        train_duration=30.0,
        eval_duration=20.0,
        train_sessions=1,
        eval_sessions=1,
    )


def legacy_report(runner, scheme, window):
    """The materializing loop evaluate_scheme replaced."""
    pipeline = runner.pipeline(window)
    flows_by_label = {
        label: [
            flow
            for trace in traces
            for flow in runner.observable_flows(scheme, trace)
        ]
        for label, traces in runner.scenario.evaluation_by_label().items()
    }
    return pipeline.evaluate_flows(flows_by_label, cache=WindowCache())


def assert_reports_equal(fused, reference):
    assert fused.confusion.classes == reference.confusion.classes
    np.testing.assert_array_equal(
        fused.confusion.matrix, reference.confusion.matrix
    )


class TestRunnerParity:
    @pytest.mark.parametrize(
        "spec", [canonical for _, canonical in LEGACY_SCHEME_SPECS] + [None]
    )
    def test_reports_match_materializing_loop(self, scenario, spec):
        fused_runner = ExperimentRunner(scenario)
        legacy_runner = ExperimentRunner(scenario)
        fused = fused_runner.evaluate_scheme(spec, window=5.0)
        reference = legacy_report(legacy_runner, spec, window=5.0)
        assert_reports_equal(fused, reference)

    def test_morphing_falls_back_and_still_matches(self, scenario):
        fused_runner = ExperimentRunner(scenario)
        legacy_runner = ExperimentRunner(scenario)
        fused = fused_runner.evaluate_scheme("morphing", window=5.0)
        reference = legacy_report(legacy_runner, "morphing", window=5.0)
        assert_reports_equal(fused, reference)


class TestRouteTelemetry:
    def _evaluate(self, scenario, spec):
        runner = ExperimentRunner(scenario)
        _, sub = obs.captured(lambda: runner.evaluate_scheme(spec, window=5.0))
        return sub.metrics.counters

    def test_fusable_scheme_never_falls_back(self, scenario):
        counters = self._evaluate(scenario, "padding+or")
        assert counters["batch.fused_plans"] > 0
        assert counters["batch.fused_flows"] > 0
        assert "batch.fallback_flows" not in counters

    def test_morphing_takes_the_fallback(self, scenario):
        counters = self._evaluate(scenario, "morphing")
        assert counters["batch.fallback_flows"] > 0
        assert "batch.fused_flows" not in counters

    def test_second_window_hits_the_plan_cache(self, scenario):
        runner = ExperimentRunner(scenario)
        runner.evaluate_scheme("or", window=5.0)
        _, sub = obs.captured(lambda: runner.evaluate_scheme("or", window=7.0))
        counters = sub.metrics.counters
        # Plans are window-independent: the second window replans nothing.
        assert counters["proc.window_cache.plan_hits"] > 0
        assert "proc.window_cache.plan_misses" not in counters
        # But fused matrices are per-window, so they are fresh misses.
        assert counters["proc.window_cache.fused_misses"] > 0


class TestProfileSurface:
    """What CI's fused-path smoke asserts, exercised in-process."""

    def _profile(self, capsys, tmp_path, *extra):
        path = tmp_path / "profile.json"
        assert (
            main(["run", "table2", *TINY_FLAGS, *extra,
                  "--profile-output", str(path)])
            == 0
        )
        capsys.readouterr()
        return json.loads(path.read_text(encoding="utf-8"))

    def test_table2_runs_fully_fused(self, capsys, tmp_path):
        payload = self._profile(capsys, tmp_path)
        counters = payload["counters"]
        assert counters["batch.fused_plans"] > 0
        assert counters["batch.fused_flows"] > 0
        assert counters.get("batch.fallback_flows", 0) == 0
        assert payload["gauges"]["batch.bytes_materialized"] > 0

    def test_parallel_profile_matches_serial(self, capsys, tmp_path):
        serial = self._profile(capsys, tmp_path)
        parallel = self._profile(capsys, tmp_path, "--jobs", "2")
        for key in (
            "batch.fused_plans",
            "batch.fused_flows",
            "batch.fused_windows",
        ):
            assert serial["counters"][key] == parallel["counters"][key]
        assert (
            serial["gauges"]["batch.bytes_materialized"]
            == parallel["gauges"]["batch.bytes_materialized"]
        )
