"""Serial/parallel equivalence of the experiment executor.

The acceptance bar for the orchestration subsystem: ``--jobs N``
reproduces the serial path's numbers exactly (same seed ⇒ same report),
and per-cell seeds don't depend on the process start method.  With
profiling on, the same bar extends to telemetry: the deterministic
projection of the captured profile (counters, histograms, span
structure — everything outside the ``process`` block) is bit-identical
between serial and parallel execution too.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.experiments import parallel, registry
from repro.experiments.registry import ScenarioParams
from repro.experiments.tables23 import classification_accuracy_table

TINY = ScenarioParams(
    seed=5, train_duration=30.0, eval_duration=20.0, train_sessions=1, eval_sessions=1
)


@pytest.fixture(autouse=True)
def fresh_worker_state():
    parallel.clear_worker_state()
    yield
    parallel.clear_worker_state()


def _assert_reports_equal(ours, reference):
    assert set(ours) == set(reference)
    for scheme in reference:
        np.testing.assert_array_equal(
            ours[scheme].confusion.matrix, reference[scheme].confusion.matrix
        )
        assert ours[scheme].confusion.classes == reference[scheme].confusion.classes


class TestJobsEquivalence:
    """jobs=1 and jobs=N produce identical reports for a small scenario."""

    def test_table2_parallel_matches_serial_and_legacy(self):
        serial = parallel.run_experiment("table2", TINY)
        parallel.clear_worker_state()
        fanned = parallel.run_experiment("table2", TINY, jobs=4)
        _assert_reports_equal(fanned.reports, serial.reports)
        legacy = classification_accuracy_table(5.0, TINY.build())
        _assert_reports_equal(fanned.reports, legacy.reports)

    def test_window_sweep_parallel_matches_serial(self):
        options = {"windows": "5,10"}
        serial = parallel.run_experiment("window_sweep", TINY, options=options)
        parallel.clear_worker_state()
        fanned = parallel.run_experiment(
            "window_sweep", TINY, options=options, jobs=4
        )
        assert fanned == serial  # frozen dataclass of float tuples

    def test_table6_parallel_matches_serial(self):
        serial = parallel.run_experiment("table6", TINY)
        parallel.clear_worker_state()
        fanned = parallel.run_experiment("table6", TINY, jobs=2)
        assert fanned.accuracy == serial.accuracy
        assert fanned.padding_overhead == serial.padding_overhead
        assert fanned.morphing_overhead == serial.morphing_overhead


class TestEveryExperimentEquivalent:
    """The acceptance bar, verbatim: every registered deterministic
    experiment's rendered report — and its captured profile's
    deterministic projection — is identical at jobs=1 and jobs=2."""

    #: Shrink the expensive knobs so the full catalog runs in seconds.
    QUICK_OPTIONS = {
        "fig1": {"duration": 5.0},
        "fig4": {"duration": 5.0},
        "fig5": {"duration": 5.0},
        "table4": {"windows": "5,10"},
        "table5": {"interfaces": "2,3"},
        "window_sweep": {"windows": "5,10"},
        "tpc": {"duration": 8.0, "stations": 2},
        "stream_replay": {"schemes": "Original,OR"},
        "drift": {"phase_duration": 15.0},
        "arms_race": {"threshold": 0.6},
    }

    @pytest.mark.parametrize(
        "name",
        [spec.name for spec in registry.all_specs() if spec.deterministic],
    )
    def test_rendered_report_identical_at_any_job_count(self, name):
        options = self.QUICK_OPTIONS.get(name)
        serial = parallel.run_experiment_result(
            name, TINY, options=options, profile=True
        )
        parallel.clear_worker_state()
        fanned = parallel.run_experiment_result(
            name, TINY, options=options, jobs=2, profile=True
        )
        serial_json = json.loads(serial.to_json())
        fanned_json = json.loads(fanned.to_json())
        serial_profile = serial_json.pop("profile")
        fanned_profile = fanned_json.pop("profile")
        # The report itself is unchanged by profiling and by fan-out...
        assert fanned_json == serial_json
        # ...and every deterministic counter/histogram/span is
        # bit-identical between serial and --jobs 2 (only the proc.*
        # block and per-cell gauges may differ with process topology).
        assert obs.profiles_equal_deterministic(fanned_profile, serial_profile)


class TestStartMethodStability:
    """Per-cell seeds and cell results don't depend on the start method."""

    def test_cell_seeds_identical_regardless_of_execution_context(self):
        # Seeds are derived in the parent from (root seed, cell name)
        # via a pure hash: building the same cells twice — or anywhere
        # else — yields the same seeds.
        spec = registry.get("table2")
        options = spec.resolve_options(None)
        first = [cell.seed for cell in spec.build_cells(TINY, options)]
        second = [cell.seed for cell in spec.build_cells(TINY, options)]
        assert first == second

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_fig1_identical_across_start_methods(self, start_method):
        options = {"duration": 5.0}
        serial = parallel.run_experiment("fig1", TINY, options=options)
        parallel.clear_worker_state()
        fanned = parallel.run_experiment(
            "fig1", TINY, options=options, jobs=2, start_method=start_method
        )
        assert set(fanned) == set(serial)
        for app in serial:
            for ours, reference in zip(fanned[app], serial[app]):
                np.testing.assert_array_equal(ours, reference)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_profile_counters_identical_across_start_methods(self, start_method):
        serial = parallel.run_experiment_result("table1", TINY, profile=True)
        parallel.clear_worker_state()
        fanned = parallel.run_experiment_result(
            "table1", TINY, jobs=2, start_method=start_method, profile=True
        )
        assert obs.profiles_equal_deterministic(
            fanned.meta["profile"], serial.meta["profile"]
        )


class TestProfileOptIn:
    """Profiling is strictly opt-in: the default output is untouched."""

    def test_profile_key_absent_without_flag(self):
        plain = parallel.run_experiment_result("table1", TINY)
        assert dict(plain.meta) == {}
        assert "profile" not in json.loads(plain.to_json())

    def test_profiling_changes_nothing_but_adds_the_payload(self):
        plain = parallel.run_experiment_result("table1", TINY)
        parallel.clear_worker_state()
        profiled = parallel.run_experiment_result("table1", TINY, profile=True)
        payload = json.loads(profiled.to_json())
        profile = payload.pop("profile")
        assert payload == json.loads(plain.to_json())
        assert profile["format"] == "repro-profile"
        assert profile["version"] == 1
        # One capture per cell, folded additively at run level.
        assert profile["counters"]["executor.cells_run"] == len(profile["cells"])
        assert profile["counters"]["scheme.apply_calls"] >= len(profile["cells"])
