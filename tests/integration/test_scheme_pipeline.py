"""Integration: the unified scheme pipeline across CLI, storage, executor.

Covers the acceptance bars of the scheme refactor:

* ``repro schemes list`` and the ``--scheme`` / ``--scheme-set`` flags
  (smoke-marked, so the CLI surface rides tier-1);
* ``repro run combined_grid --scheme padding+or --jobs 2`` equals the
  serial run bit for bit;
* a :class:`~repro.schemes.SchemeSpec` embedded in a corpus manifest
  rehydrates — serially and at ``--jobs 2`` — to a scheme whose output
  is ``np.array_equal`` to the recording scheme's.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import parallel
from repro.experiments.registry import ScenarioParams
from repro.schemes import build_stack, canonical_stack, stack_label
from repro.storage import TraceStore

TINY = ScenarioParams(
    seed=5, train_duration=30.0, eval_duration=20.0,
    train_sessions=1, eval_sessions=1,
)

TINY_FLAGS = [
    "--seed", "5",
    "--train-duration", "30", "--eval-duration", "20",
    "--train-sessions", "1", "--eval-sessions", "1",
]


@pytest.fixture(autouse=True)
def fresh_worker_state():
    parallel.clear_worker_state()
    yield
    parallel.clear_worker_state()


@pytest.mark.smoke
class TestSchemesCli:
    def test_schemes_list_names_the_catalog(self, capsys):
        assert main(["schemes", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("original", "fh", "ra", "rr", "or", "padding", "morphing"):
            assert name in out

    def test_schemes_list_json_carries_params(self, capsys):
        assert main(["schemes", "list", "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in entries}
        assert by_name["or"]["params"]["interfaces"] == 3
        assert by_name["or"]["kind"] == "reshaper"
        assert "OR" in by_name["or"]["aliases"]

    def test_run_with_scheme_flag(self, capsys):
        assert main([
            "run", "combined_grid", *TINY_FLAGS,
            "--scheme", "padding+or", "--set", "classifiers=bayes",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["schemes"] == "padding+or"
        assert [row[0] for row in payload["rows"]] == ["padding+or"]

    def test_scheme_set_overrides_matching_stages(self, capsys):
        assert main([
            "run", "combined_grid", *TINY_FLAGS,
            "--scheme", "padding+or", "--scheme-set", "interfaces=2",
            "--set", "classifiers=bayes", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["scheme_params"] == "interfaces=2"
        # I=2 caps the OR fan-out at 2 flows per trace (7 traces).
        flows = payload["rows"][0][5]
        assert flows <= 2 * 7

    def test_scheme_flag_maps_to_single_scheme_experiments(self, capsys):
        assert main([
            "run", "arms_race", *TINY_FLAGS,
            "--scheme", "RR", "--set", "threshold=0.6", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["scheme"] == "RR"

    def test_unknown_scheme_exits_2_with_catalog(self, capsys):
        assert main(["run", "combined_grid", "--scheme", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "registered schemes" in err

    def test_scheme_flag_on_schemeless_experiment_exits_2(self, capsys):
        assert main(["run", "table1", "--scheme", "or"]) == 2
        assert "no scheme selection" in capsys.readouterr().err

    def test_composed_scheme_on_single_scheme_experiment_exits_2(self, capsys):
        assert main(["run", "arms_race", "--scheme", "padding+or"]) == 2
        assert "single scheme" in capsys.readouterr().err

    def test_scheme_set_without_grid_experiment_exits_2(self, capsys):
        assert main(["run", "table1", "--scheme-set", "interfaces=5"]) == 2
        assert "scheme_params" in capsys.readouterr().err

    def test_malformed_scheme_set_exits_2(self, capsys):
        assert main([
            "run", "combined_grid", "--scheme-set", "interfaces",
        ]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_scheme_set_sweeps_the_default_grid(self):
        # A key only some compositions declare is the normal sweep
        # case: padding (no interfaces param) must pass through while
        # ra/rr/or stages pick the override up.
        from repro.experiments import registry as experiment_registry

        spec = experiment_registry.get("combined_grid")
        cells = spec.build_cells(
            TINY, spec.resolve_options({"scheme_params": "interfaces=2"})
        )
        by_composition = {
            cell.params["composition"]: cell.params["specs"] for cell in cells
        }
        (padding_spec,) = by_composition["padding"]
        assert padding_spec.param_dict() == {}
        stamped = [
            spec
            for specs in by_composition.values()
            for spec in specs
            if spec.param_dict().get("interfaces") == 2
        ]
        assert stamped  # the override landed somewhere in the grid

    def test_scheme_set_values_may_contain_commas(self, capsys):
        assert main([
            "run", "combined_grid", *TINY_FLAGS,
            "--scheme", "fh", "--scheme-set", "channels=1,6",
            "--scheme-set", "dwell=0.25",
            "--set", "classifiers=bayes", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["scheme_params"] == "channels=1,6;dwell=0.25"
        # Two channels -> at most 2 observable slices per trace (7 traces).
        assert payload["rows"][0][5] <= 2 * 7

    def test_scheme_flag_conflicting_with_set_exits_2(self, capsys):
        assert main([
            "run", "combined_grid", "--set", "schemes=or", "--scheme", "padding",
        ]) == 2
        assert "use one spelling" in capsys.readouterr().err

    def test_canonical_spellings_reach_legacy_experiments(self, capsys):
        # The catalog prints canonical lowercase names; arms_race and
        # stream_replay must accept them (and aliases), not just the
        # uppercase table-column spellings.
        assert main([
            "run", "arms_race", *TINY_FLAGS,
            "--scheme", "rr", "--set", "threshold=0.6", "--format", "json",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["params"]["scheme"] == "rr"
        assert main([
            "run", "stream_replay", *TINY_FLAGS,
            "--scheme", "or", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row[0] for row in payload["rows"]] == ["OR"]  # display fold

    def test_stream_replay_audits_defense_schemes_too(self, capsys):
        assert main([
            "run", "stream_replay", *TINY_FLAGS,
            "--scheme", "pseudonym", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        (row,) = payload["rows"]
        assert row[0] == "pseudonym"
        assert row[4] == "yes"  # streaming == batch, per the parity audit

    def test_stream_replay_rejects_compositions(self, capsys):
        assert main(["run", "stream_replay", "--scheme", "padding+or"]) == 2
        assert "one scheme at a time" in capsys.readouterr().err


class TestCombinedGridParity:
    def test_jobs_2_equals_serial(self):
        options = {"schemes": "padding+or", "classifiers": "bayes"}
        serial = parallel.run_experiment_result(
            "combined_grid", TINY, options=options
        )
        parallel.clear_worker_state()
        fanned = parallel.run_experiment_result(
            "combined_grid", TINY, options=options, jobs=2
        )
        assert json.loads(fanned.to_json()) == json.loads(serial.to_json())

    def test_default_grid_is_wide(self):
        from repro.experiments import registry as experiment_registry

        spec = experiment_registry.get("combined_grid")
        cells = spec.build_cells(TINY, spec.resolve_options(None))
        compositions = {cell.params["composition"] for cell in cells}
        assert len(compositions) >= 8  # the scenario-diversity bar
        stacked = [c for c in compositions if "+" in c]
        assert len(stacked) >= 4
        assert len(cells) == len(compositions) * 2  # x classifiers

    def test_defended_traffic_identical_across_classifier_columns(self):
        # The stack seed derives from the composition alone, so the
        # classifier columns attack the same stochastic defense
        # realization: overhead/handshake/fan-out must agree per
        # composition even for seed-consuming schemes (morphing, ra).
        result = parallel.run_experiment(
            "combined_grid", TINY,
            options={"schemes": "morphing,ra", "classifiers": "svm,bayes"},
        )
        by_composition = {}
        for cell in result.cells:
            by_composition.setdefault(cell.composition, []).append(cell)
        for cells in by_composition.values():
            assert len(cells) == 2
            assert cells[0].overhead_percent == cells[1].overhead_percent
            assert cells[0].handshake_bytes == cells[1].handshake_bytes
            assert cells[0].flows == cells[1].flows

    def test_overhead_reported_additively(self):
        result = parallel.run_experiment(
            "combined_grid", TINY,
            options={"schemes": "padding,padding+or", "classifiers": "bayes"},
        )
        by_composition = {cell.composition: cell for cell in result.cells}
        # OR adds no data bytes, so padding+or books exactly padding's
        # overhead (identical padded input, identical accounting).
        assert by_composition["padding+or"].overhead_percent == pytest.approx(
            by_composition["padding"].overhead_percent
        )
        assert by_composition["padding+or"].handshake_bytes > 0
        assert by_composition["padding"].handshake_bytes == 0


class TestCorpusSchemeRoundTrip:
    @pytest.fixture()
    def store_path(self, tmp_path):
        path = str(tmp_path / "defended.store")
        assert main([
            "corpus", "build", path, *TINY_FLAGS, "--scheme", "padding+OR",
        ]) == 0
        return path

    def test_manifest_carries_canonical_specs(self, store_path):
        store = TraceStore.open(store_path)
        specs = store.scheme_specs()
        assert stack_label(specs) == "padding+or"
        assert specs == canonical_stack("padding+or")

    def test_rehydrated_scheme_output_is_bit_identical(self, store_path):
        store = TraceStore.open(store_path)
        params = ScenarioParams.for_corpus(store_path)
        assert params.schemes == store.scheme_specs()

        recorded = build_stack(canonical_stack("padding+or"), seed=TINY.seed)
        rehydrated = build_stack(params.schemes, seed=params.seed)
        scenario = params.build()
        for traces in scenario.evaluation_by_label().values():
            for trace in traces:
                ours = rehydrated.apply(trace)
                reference = recorded.apply(trace)
                assert sorted(ours.flows) == sorted(reference.flows)
                for key in ours.flows:
                    assert np.array_equal(
                        ours.flows[key].times, reference.flows[key].times
                    )
                    assert np.array_equal(
                        ours.flows[key].sizes, reference.flows[key].sizes
                    )
                    assert np.array_equal(
                        ours.flows[key].ifaces, reference.flows[key].ifaces
                    )
                assert ours.extra_bytes == reference.extra_bytes

    def test_corpus_run_serial_matches_jobs_2(self, store_path, capsys):
        args = [
            "run", "combined_grid", "--corpus", store_path,
            "--scheme", "padding+or", "--set", "classifiers=bayes",
            "--format", "json",
        ]
        assert main(args) == 0
        serial = json.loads(capsys.readouterr().out)
        parallel.clear_worker_state()
        assert main([*args, "--jobs", "2"]) == 0
        fanned = json.loads(capsys.readouterr().out)
        assert fanned == serial
        # The corpus's scheme recipe rides into the artifact params.
        assert serial["params"]["schemes"] == "padding+or"

    def test_corpus_info_displays_scheme(self, store_path, capsys):
        assert main(["corpus", "info", store_path]) == 0
        assert "padding+or" in capsys.readouterr().out

    def test_corpus_info_json_carries_specs(self, store_path, capsys):
        assert main(["corpus", "info", store_path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schemes"] == [
            {"scheme": "padding", "params": {}},
            {"scheme": "or", "params": {}},
        ]

    def test_plain_corpus_has_no_schemes(self, tmp_path, capsys):
        path = str(tmp_path / "plain.store")
        assert main(["corpus", "build", path, *TINY_FLAGS]) == 0
        capsys.readouterr()
        store = TraceStore.open(path)
        assert store.scheme_specs() == ()
        assert ScenarioParams.for_corpus(path).schemes is None

    def test_build_with_unknown_scheme_exits_2(self, tmp_path, capsys):
        path = str(tmp_path / "bad.store")
        assert main(["corpus", "build", path, "--scheme", "nosuch"]) == 2
        assert "registered schemes" in capsys.readouterr().err
        import os

        assert not os.path.exists(os.path.join(path, "manifest.json"))

    def test_malformed_schemes_recipe_raises_store_error(self, store_path):
        from repro.storage import StoreFormatError

        store = TraceStore.open(store_path)
        store.schemes = [{"params": {}}]  # missing the scheme name
        with pytest.raises(StoreFormatError, match="malformed schemes recipe"):
            store.scheme_specs()
