"""Integration: the DES WLAN — handshake, replay, sniffer, linking."""

from repro.analysis.linking import RssiLinker, linking_accuracy
from repro.core.schedulers import OrthogonalReshaper
from repro.net.channel import Position
from repro.net.wlan import WlanSimulation
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator


class TestSniffedFlowsMatchTraceReshaping:
    def test_sniffer_sees_or_partition(self):
        """The over-the-air OR partition matches the trace-level one."""
        sim = WlanSimulation.build(seed=3)
        station = sim.add_station(
            "sta0", Position(5.0, 0.0), scheduler=OrthogonalReshaper.paper_default()
        )
        sim.configure_virtual_interfaces(station, 3)
        trace = TrafficGenerator(seed=31).generate(AppType.BITTORRENT, 15.0)
        sim.replay_trace("sta0", trace)
        sim.run()

        flows = sim.captured_flows()
        virtuals = station.driver.vaps.addresses
        # Interface 0 must carry only small frames, interface 2 only full.
        flow0 = flows.get(virtuals[0])
        flow2 = flows.get(virtuals[2])
        assert flow0 is not None and flow2 is not None
        assert flow0.sizes.max() <= 232
        assert flow2.sizes.min() > 1540

    def test_total_capture_conserves_packets(self):
        sim = WlanSimulation.build(seed=4)
        station = sim.add_station(
            "sta0", Position(5.0, 0.0), scheduler=OrthogonalReshaper.paper_default()
        )
        sim.configure_virtual_interfaces(station, 3)
        trace = TrafficGenerator(seed=32).generate(AppType.GAMING, 20.0)
        sim.replay_trace("sta0", trace)
        sim.run()
        flows = sim.captured_flows()
        captured = sum(
            len(flow)
            for addr, flow in flows.items()
            if station.driver.vaps.owns(addr)
        )
        assert captured == len(trace)


class TestRssiLinkingAndTpc:
    def _run(self, tpc_range: float, seed: int = 9):
        sim = WlanSimulation.build(seed=seed)
        generator = TrafficGenerator(seed=seed + 1)
        owners = {}
        for index in range(3):
            name = f"sta{index}"
            station = sim.add_station(
                name,
                Position(3.0 + 14.0 * index, 1.0),
                scheduler=OrthogonalReshaper.paper_default(),
                tpc_range_db=tpc_range,
            )
            sim.configure_virtual_interfaces(station, 3)
            trace = generator.generate(AppType.BITTORRENT, 12.0, session=index)
            sim.replay_trace(name, trace)
            for virtual in station.driver.vaps.addresses:
                owners[virtual] = index
        sim.run()
        flows = sim.captured_flows()
        flow_list, owner_list = [], []
        for address, flow in flows.items():
            if address in owners and len(flow.select(flow.directions == 1)) > 0:
                flow_list.append(flow)
                owner_list.append(owners[address])
        groups = RssiLinker(threshold_db=3.0).link(flow_list)
        return linking_accuracy(groups, owner_list)

    def test_fixed_power_flows_are_linkable(self):
        # Sec. V-A: without TPC, RSSI clusters expose the physical card.
        assert self._run(tpc_range=0.0) > 0.8

    def test_tpc_degrades_linking(self):
        linked_fixed = self._run(tpc_range=0.0)
        linked_tpc = self._run(tpc_range=20.0)
        assert linked_tpc < linked_fixed
