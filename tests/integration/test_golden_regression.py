"""Golden-regression suite: frozen experiment outputs, exact equality.

Tiny reduced-scale runs of representative experiments are frozen as
JSON snapshots under ``tests/golden/``; every tier-1 pass re-runs them
and asserts the *entire* rendered result — params, headers, rows, and
extras — is equal to the committed snapshot.  Floats survive the JSON
round trip exactly (``repr`` shortest form), so this is bit-level
equality, not approximate: a storage refactor, a cache change, or a
"harmless" numeric reordering that shifts any value in any cell fails
loudly here.

When an intentional change shifts the numbers, regenerate deliberately::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_regression.py \
        --regenerate-golden -q

and commit the diff with the change that caused it.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.parallel import run_experiment_result
from repro.experiments.registry import ScenarioParams

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: Reduced-scale scenario shared by every golden run (identical to the
#: CLI smoke tests' TINY_FLAGS, so the in-process corpus memo is shared).
GOLDEN_PARAMS = ScenarioParams(
    seed=5,
    train_duration=30.0,
    eval_duration=20.0,
    train_sessions=1,
    eval_sessions=1,
)

#: Experiment -> option overrides for the frozen runs.  fig1 exercises
#: the generator path, table1 the reshaping engine, stream_replay the
#: whole train -> reshape -> featurize -> classify pipeline in both its
#: batch and streaming incarnations (plus their parity audit).
GOLDEN_RUNS: dict[str, dict[str, object]] = {
    "table1": {},
    "fig1": {"duration": 20.0, "grid_step": 64},
    "stream_replay": {},
}


def compute(name: str) -> dict:
    """The JSON payload of one reduced-scale run (exact float round trip)."""
    result = run_experiment_result(name, params=GOLDEN_PARAMS, options=GOLDEN_RUNS[name])
    return json.loads(result.to_json())


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_output_matches_golden_snapshot(name: str, request: pytest.FixtureRequest):
    payload = compute(name)
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--regenerate-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing snapshot {path}; run pytest --regenerate-golden once and "
        "commit the result"
    )
    frozen = json.loads(path.read_text())
    assert payload == frozen, (
        f"{name} output drifted from its golden snapshot; if the change is "
        "intentional, rerun with --regenerate-golden and commit the diff"
    )


def test_snapshots_have_no_strays():
    """Every committed snapshot corresponds to a registered golden run."""
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert committed == set(GOLDEN_RUNS)
