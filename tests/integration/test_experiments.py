"""Integration: every experiment module runs at reduced scale."""

import math

import numpy as np
import pytest

from repro.experiments.fig1 import figure1_cdf_series
from repro.experiments.fig45 import figure4_series, figure5_series
from repro.experiments.scenarios import EvaluationScenario, build_schemes
from repro.experiments.table1 import table1_interface_features
from repro.experiments.tables23 import classification_accuracy_table
from repro.experiments.table4 import table4_false_positives
from repro.experiments.table5 import table5_interface_sweep
from repro.experiments.table6 import table6_efficiency
from repro.experiments.discussion import (
    combined_defense_accuracy,
    reshaping_scalability,
    tpc_linking_experiment,
)


@pytest.fixture(scope="module")
def scenario():
    return EvaluationScenario(
        seed=2,
        train_duration=120.0,
        eval_duration=90.0,
        train_sessions=3,
        eval_sessions=2,
    )


class TestFigures:
    def test_fig1_series(self):
        series = figure1_cdf_series(duration=60.0, seed=2)
        assert len(series) == 7
        for grid, cdf in series.values():
            assert cdf[-1] == pytest.approx(1.0)
            assert np.all(np.diff(cdf) >= 0)
        # Downloading's CDF stays near zero until the MTU band.
        _, download_cdf = series["downloading"]
        grid = series["downloading"][0]
        assert download_cdf[np.searchsorted(grid, 1500)] < 0.05

    def test_fig4_series(self):
        series = figure4_series(duration=60.0, seed=2)
        assert set(series.interface_histograms) == {0, 1, 2}
        # Fig. 4: interfaces are split at 525/1050 and together carry all packets.
        total = sum(series.packets_per_interface.values())
        _, original_counts = series.original_histogram
        assert total == original_counts.sum()

    def test_fig5_series(self):
        series = figure5_series(duration=60.0, seed=2)
        # Fig. 5: modulo hashing spreads packets across all interfaces with
        # each interface seeing the full size spectrum.
        for _, cdf in series.interface_cdfs.values():
            assert cdf[-1] == pytest.approx(1.0)
        counts = list(series.packets_per_interface.values())
        assert min(counts) > 0.1 * max(counts)


class TestTables:
    def test_table1_rows(self, scenario):
        rows = table1_interface_features(scenario)
        assert len(rows) == 7
        for row in rows:
            small = row.interface_mean_sizes[0]
            full = row.interface_mean_sizes[2]
            if not math.isnan(small):
                assert small <= 232
            if not math.isnan(full):
                assert full > 1540

    def test_tables23_shape(self, scenario):
        table = classification_accuracy_table(5.0, scenario)
        rows = table.rows()
        assert len(rows) == 8  # 7 apps + Mean
        assert table.mean("OR") < table.mean("Original")
        assert table.mean("OR") < table.mean("RA")

    def test_table4_fp_increases_under_or(self, scenario):
        result = table4_false_positives(scenario, windows=(5.0,))
        assert result.mean_fp[(5.0, "OR")] > result.mean_fp[(5.0, "Original")]

    def test_table5_sweep(self, scenario):
        result = table5_interface_sweep(scenario, interface_counts=(2, 3))
        rows = result.rows()
        assert len(rows) == 8
        assert set(result.means) == {2, 3}

    def test_table6_overheads(self, scenario):
        result = table6_efficiency(scenario)
        # Table VI: chatting padding is brutal, video morphing is cheap,
        # downloading/uploading cost ~nothing either way.
        assert result.padding_overhead["chatting"] > 200.0
        assert result.padding_overhead["downloading"] < 5.0
        assert result.morphing_overhead["video"] < 15.0
        assert result.morphing_overhead["downloading"] == 0.0
        assert result.mean_padding_overhead > result.mean_morphing_overhead


class TestDiscussion:
    def test_combined_defense_reduces_mean(self, scenario):
        result = combined_defense_accuracy(scenario)
        # Sec. V-C: reshaping+morphing beats plain OR on mean accuracy
        # while costing far less than full morphing.
        assert result.combined_mean <= result.or_mean + 5.0
        assert result.combined_overhead_percent < 40.0

    def test_tpc_linking(self):
        result = tpc_linking_experiment(seed=2, duration=10.0, stations=2)
        assert 0.0 <= result.accuracy_with_tpc <= 1.0
        assert result.accuracy_without_tpc >= result.accuracy_with_tpc - 0.05
        assert result.flows_observed >= 4

    def test_scalability_is_linear(self):
        result = reshaping_scalability(seed=2, durations=(10.0, 20.0, 40.0))
        rates = result.packets_per_second
        # O(N): throughput stays within a small factor across sizes.
        assert max(rates) < 12 * min(rates)


class TestSchemes:
    def test_build_schemes_names(self):
        schemes = build_schemes()
        assert list(schemes) == ["Original", "FH", "RA", "RR", "OR"]
        assert schemes["Original"] is None
