"""The paper's critique of pseudonym schemes, verified (Sec. II-B).

"Pseudonym schemes ... are insufficient to prevent traffic analysis
attacks, because they do not obscure the traffic features when the
traffic is partitioned over ... a specific MAC address.  Hence, a single
partition may release enough sensitive information for the adversary to
perform traffic analysis accurately."
"""

import pytest

from repro.analysis.attack import AttackPipeline
from repro.core.engine import ReshapingEngine
from repro.core.schedulers import OrthogonalReshaper
from repro.defenses.pseudonym import PseudonymDefense
from repro.traffic.apps import AppType
from repro.traffic.generator import TrafficGenerator


@pytest.fixture(scope="module")
def setup():
    generator = TrafficGenerator(seed=83)
    training = {
        app.value: [generator.generate(app, 120.0, session=s) for s in range(3)]
        for app in AppType
    }
    pipeline = AttackPipeline(window=5.0, seed=83)
    pipeline.train(training)
    evaluation = {
        app: generator.generate(app, 120.0, session=55) for app in AppType
    }
    return pipeline, evaluation


def test_pseudonyms_barely_reduce_accuracy(setup):
    pipeline, evaluation = setup
    original_flows = {app.value: [trace] for app, trace in evaluation.items()}
    original = pipeline.evaluate_flows(original_flows).mean_accuracy

    pseudonym = PseudonymDefense(epoch=30.0)
    pseudonym_flows = {
        app.value: pseudonym.apply(trace).observable_flows
        for app, trace in evaluation.items()
    }
    defended = pipeline.evaluate_flows(pseudonym_flows).mean_accuracy

    # Each pseudonym epoch is a faithful slice of the original traffic,
    # so per-window classification barely notices the address change.
    assert defended > original - 10.0


def test_reshaping_beats_pseudonyms(setup):
    pipeline, evaluation = setup
    pseudonym = PseudonymDefense(epoch=30.0)
    engine = ReshapingEngine(OrthogonalReshaper.paper_default())

    pseudonym_flows, or_flows = {}, {}
    for app, trace in evaluation.items():
        pseudonym_flows[app.value] = pseudonym.apply(trace).observable_flows
        or_flows[app.value] = engine.apply(trace).observable_flows

    pseudonym_accuracy = pipeline.evaluate_flows(pseudonym_flows).mean_accuracy
    or_accuracy = pipeline.evaluate_flows(or_flows).mean_accuracy
    assert or_accuracy < pseudonym_accuracy - 10.0
