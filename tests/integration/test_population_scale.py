"""Out-of-core contract of the ``population_scale`` experiment.

Two acceptance bars from the sharded-federation work:

* **Bit-identity.**  The population sweep's rows are identical at
  ``jobs=1`` and ``jobs=2``, under fork *and* spawn — every per-station
  quantity is a pure seed derivation, so cell placement can't matter.
* **Bounded memory.**  Every cell touches only its own shard's slice:
  the per-cell ``store.bytes_mapped`` gauge equals that cell's scratch
  store (its shard's packets × 24 B/row) and never the population
  total — the captured profiles are the proof that evaluation is
  out-of-core, not just decomposed.
"""

import json

import pytest

from repro.experiments import parallel
from repro.experiments.population_scale import station_app, station_name
from repro.experiments.registry import ScenarioParams
from repro.storage import shard_for_key

TINY = ScenarioParams(
    seed=5, train_duration=30.0, eval_duration=20.0, train_sessions=1, eval_sessions=1
)

#: Reduced sweep: two population sizes over two shards (4 cells).
OPTIONS = {"populations": "6,12", "shards": 2, "station_duration": 8.0}

#: Bytes one packet occupies across the six column files.
ROW_BYTES = 24


@pytest.fixture(autouse=True)
def fresh_worker_state():
    parallel.clear_worker_state()
    yield
    parallel.clear_worker_state()


@pytest.fixture(scope="module")
def serial_result():
    parallel.clear_worker_state()
    result = parallel.run_experiment_result(
        "population_scale", TINY, options=OPTIONS, profile=True
    )
    parallel.clear_worker_state()
    return result


class TestSerialParallelIdentity:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_rows_identical_at_jobs2_under_any_start_method(
        self, serial_result, start_method
    ):
        fanned = parallel.run_experiment_result(
            "population_scale", TINY, options=OPTIONS,
            jobs=2, start_method=start_method,
        )
        serial_json = json.loads(serial_result.to_json())
        fanned_json = json.loads(fanned.to_json())
        serial_json.pop("profile")
        assert fanned_json["rows"] == serial_json["rows"]
        assert fanned_json["extras"] == serial_json["extras"]

    def test_rows_are_sane(self, serial_result):
        payload = json.loads(serial_result.to_json())
        populations = [row[0] for row in payload["rows"]]
        assert populations == [6, 12]
        for row in payload["rows"]:
            population, packets, windows, flows, acc, overhead, handshake = row
            assert packets > 0 and windows > 0 and flows >= population
            assert 0.0 <= acc <= 100.0
            assert overhead >= 0.0 and handshake >= 0


class TestStationStability:
    def test_station_identity_is_population_independent(self):
        # Growing the population adds stations; it never reshuffles the
        # ones that already exist — the sweep's core premise.
        for index in range(12):
            station = station_name(index)
            assert station_app(TINY.seed, station) is station_app(
                TINY.seed, station
            )

    def test_placement_partitions_every_population(self, serial_result):
        shard_packets = json.loads(serial_result.to_json())["extras"][
            "shard_packets"
        ]
        for population in (6, 12):
            routed = [
                shard_for_key(station_name(i), OPTIONS["shards"])
                for i in range(population)
            ]
            for shard in range(OPTIONS["shards"]):
                key = f"pop={population}/shard={shard}"
                assert key in shard_packets
                # A shard with no routed stations holds zero packets.
                if routed.count(shard) == 0:
                    assert shard_packets[key] == 0
                else:
                    assert shard_packets[key] > 0


class TestOutOfCoreBound:
    def test_per_cell_mapped_bytes_is_one_shard_slice(self, serial_result):
        payload = json.loads(serial_result.to_json())
        profile = payload["profile"]
        shard_packets = payload["extras"]["shard_packets"]
        population_bytes = {}
        for name, packets in shard_packets.items():
            population = name.split("/", 1)[0]
            population_bytes[population] = (
                population_bytes.get(population, 0) + packets * ROW_BYTES
            )
        assert len(profile["cells"]) == len(shard_packets)
        for cell in profile["cells"]:
            expected = shard_packets[cell["cell"]] * ROW_BYTES
            mapped = cell["gauges"].get("store.bytes_mapped", 0)
            # The cell maps exactly its scratch slice...
            assert mapped == expected
            # ...which is strictly less than the whole population's
            # corpus whenever more than one shard got stations.
            population = cell["cell"].split("/", 1)[0]
            if expected and expected != population_bytes[population]:
                assert mapped < population_bytes[population]

    def test_shards_tally_the_whole_population_corpus(self, serial_result):
        payload = json.loads(serial_result.to_json())
        shard_packets = payload["extras"]["shard_packets"]
        by_population = {}
        for name, packets in shard_packets.items():
            population = int(name.split("/", 1)[0].split("=", 1)[1])
            by_population[population] = by_population.get(population, 0) + packets
        rows = {row[0]: row[1] for row in payload["rows"]}
        assert by_population == rows
