"""Smoke tests for the unified ``repro`` CLI.

Marked ``smoke`` and collected by the tier-1 run, so the CLI cannot
silently rot: ``repro run --help``, ``repro list``, and one tiny
experiment run end-to-end on every test pass.
"""

import json

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.smoke

#: Tiny-scenario flags shared by the end-to-end runs (seconds, sessions).
TINY_FLAGS = [
    "--seed", "5",
    "--train-duration", "30", "--eval-duration", "20",
    "--train-sessions", "1", "--eval-sessions", "1",
]


class TestHelp:
    def test_top_level_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_run_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--jobs" in out and "--set" in out

    def test_parser_builds_without_side_effects(self):
        assert build_parser().prog == "repro"


class TestList:
    def test_list_names_every_registered_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table2", "table6", "fig1", "window_sweep"):
            assert name in out

    def test_list_json_is_parseable(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {"name", "cells", "deterministic", "options", "title"} <= set(entries[0])
        by_name = {entry["name"]: entry for entry in entries}
        assert by_name["table2"]["cells"] == 5
        assert by_name["scalability"]["deterministic"] is False

    def test_list_verbose_spells_out_every_option(self, capsys):
        assert main(["list", "--verbose"]) == 0
        out = capsys.readouterr().out
        # Knob discovery without reading source: exact --set spellings
        # with type and default for every experiment.
        assert "--set KEY=VALUE" in out
        assert "--set windows=<str>  (default: 5,15,30,60)" in out
        assert "--set threshold=<float>  (default: 0.85)" in out
        assert "--set interfaces=<int>" in out

    def test_list_verbose_json_carries_option_details(self, capsys):
        assert main(["list", "--verbose", "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in entries}
        details = {
            option["name"]: option
            for option in by_name["arms_race"]["option_details"]
        }
        assert details["threshold"] == {
            "name": "threshold", "type": "float", "default": 0.85,
        }
        assert by_name["table1"]["option_details"][0]["type"] == "int"


class TestRun:
    def test_run_table1_end_to_end_text(self, capsys):
        assert main(["run", "table1", *TINY_FLAGS]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "bittorrent" in out

    def test_run_fig1_json_round_trips(self, capsys):
        assert (
            main(["run", "fig1", *TINY_FLAGS, "--set", "duration=5",
                  "--format", "json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig1"
        assert payload["params"]["duration"] == 5.0
        assert len(payload["rows"]) == 7
        assert "series" in payload["extras"]

    def test_run_writes_output_file(self, capsys, tmp_path):
        out_path = tmp_path / "fig4.json"
        assert (
            main(["run", "fig4", *TINY_FLAGS, "--set", "duration=5",
                  "--output", str(out_path)])
            == 0
        )
        payload = json.loads(out_path.read_text())
        assert payload["experiment"] == "fig4"

    def test_explicit_format_overrides_output_suffix(self, capsys, tmp_path):
        out_path = tmp_path / "fig4.txt"
        assert (
            main(["run", "fig4", *TINY_FLAGS, "--set", "duration=5",
                  "--format", "csv", "--output", str(out_path)])
            == 0
        )
        assert out_path.read_text().startswith("flow,packets,share %")

    def test_unknown_experiment_exits_2_with_catalog(self, capsys):
        assert main(["run", "table99", *TINY_FLAGS]) == 2
        err = capsys.readouterr().err
        assert "table99" in err and "table2" in err

    def test_unknown_option_exits_2(self, capsys):
        assert main(["run", "fig4", *TINY_FLAGS, "--set", "bogus=1"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_malformed_set_exits_2(self, capsys):
        assert main(["run", "fig4", *TINY_FLAGS, "--set", "no-equals-sign"]) == 2
        assert "expected KEY=VALUE" in capsys.readouterr().err


class TestCorpus:
    """`repro corpus build` -> `repro run --corpus` round trip."""

    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli-corpus") / "tiny.store")
        assert main(["corpus", "build", path, *TINY_FLAGS]) == 0
        return path

    def test_build_prints_summary(self, capsys, store_path):
        # The fixture already built it; `info` re-reads the manifest.
        assert main(["corpus", "info", store_path]) == 0
        out = capsys.readouterr().out
        assert "packets" in out and "train" in out and "eval" in out

    def test_info_json_is_parseable(self, capsys, store_path):
        assert main(["corpus", "info", store_path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["seed"] == 5
        assert payload["packets"] > 0
        assert {"role", "label", "traces", "packets"} <= set(payload["splits"][0])

    def test_run_against_corpus_matches_regenerated(self, capsys, store_path):
        assert main(["run", "table1", "--corpus", store_path,
                     "--format", "json"]) == 0
        from_corpus = json.loads(capsys.readouterr().out)
        assert main(["run", "table1", *TINY_FLAGS, "--format", "json"]) == 0
        regenerated = json.loads(capsys.readouterr().out)
        # Bit-identical cells: the stored corpus replays the exact traces
        # the generator would produce at these params.
        assert from_corpus["rows"] == regenerated["rows"]
        assert from_corpus["params"]["corpus"] == store_path

    def test_corpus_run_subcommand_is_equivalent(self, capsys, store_path):
        assert main(["corpus", "run", "table1", store_path,
                     "--format", "json"]) == 0
        via_subcommand = json.loads(capsys.readouterr().out)
        assert main(["run", "table1", "--corpus", store_path,
                     "--format", "json"]) == 0
        via_flag = json.loads(capsys.readouterr().out)
        assert via_subcommand["rows"] == via_flag["rows"]

    def test_corpus_run_with_jobs_matches_serial(self, capsys, store_path):
        # Cells carry only the store path; each worker opens the corpus
        # read-only, so fan-out must reproduce the serial rows exactly.
        assert main(["run", "table1", "--corpus", store_path,
                     "--jobs", "2", "--format", "json"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert main(["run", "table1", "--corpus", store_path,
                     "--format", "json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert parallel["rows"] == serial["rows"]

    def test_conflicting_scenario_flag_exits_2(self, capsys, store_path):
        assert main(["run", "table1", "--corpus", store_path, "--seed", "9"]) == 2
        assert "conflicts with the corpus" in capsys.readouterr().err

    def test_explicit_flag_equal_to_default_still_conflicts(
        self, capsys, store_path
    ):
        # The corpus stores seed=5; --seed 0 happens to equal the
        # built-in default but was passed explicitly, so it must be
        # rejected, not silently replaced by the stored value.
        assert main(["run", "table1", "--corpus", store_path, "--seed", "0"]) == 2
        assert "conflicts with the corpus" in capsys.readouterr().err

    def test_missing_store_exits_2(self, capsys, tmp_path):
        assert main(["run", "table1", "--corpus", str(tmp_path / "nope")]) == 2
        assert "cannot use corpus" in capsys.readouterr().err

    def test_build_refuses_overwrite_without_flag(self, capsys, store_path):
        assert main(["corpus", "build", store_path, *TINY_FLAGS]) == 2
        assert "overwrite" in capsys.readouterr().err


class TestShardedCorpus:
    """`corpus build --shards` -> info/run, transparently federated."""

    @pytest.fixture(scope="class")
    def shards_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli-shards") / "tiny.shards")
        assert main(["corpus", "build", path, "--shards", "3", *TINY_FLAGS]) == 0
        return path

    def test_build_creates_a_federation(self, shards_path):
        from repro.storage import ShardSet, is_shardset

        assert is_shardset(shards_path)
        federation = ShardSet.open(shards_path)
        assert federation.shard_count == 3
        assert federation.packets > 0
        federation.close()

    def test_info_reports_shard_count(self, capsys, shards_path):
        assert main(["corpus", "info", shards_path]) == 0
        out = capsys.readouterr().out
        assert "3 shards" in out
        assert "train" in out and "eval" in out

    def test_info_json_carries_shards_key(self, capsys, shards_path):
        assert main(["corpus", "info", shards_path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 3
        assert payload["scenario"]["seed"] == 5

    def test_run_against_federation_matches_regenerated(
        self, capsys, shards_path
    ):
        # The federation hydrates the same scenario the generator
        # produces at these params — rows must be bit-identical.
        assert main(["run", "table1", "--corpus", shards_path,
                     "--format", "json"]) == 0
        from_corpus = json.loads(capsys.readouterr().out)
        assert main(["run", "table1", *TINY_FLAGS, "--format", "json"]) == 0
        regenerated = json.loads(capsys.readouterr().out)
        assert from_corpus["rows"] == regenerated["rows"]

    def test_corpus_run_with_jobs_matches_serial(self, capsys, shards_path):
        assert main(["corpus", "run", "table1", shards_path,
                     "--jobs", "2", "--format", "json"]) == 0
        fanned = json.loads(capsys.readouterr().out)
        assert main(["corpus", "run", "table1", shards_path,
                     "--format", "json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert fanned["rows"] == serial["rows"]

    def test_population_scale_runs_against_federation(
        self, capsys, shards_path
    ):
        assert main(["corpus", "run", "population_scale", shards_path,
                     "--set", "populations=4", "--set", "shards=2",
                     "--set", "station_duration=5",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "population_scale"
        (row,) = payload["rows"]
        assert row[0] == 4 and row[1] > 0

    def test_invalid_shard_count_exits_2(self, capsys, tmp_path):
        assert main(["corpus", "build", str(tmp_path / "bad.shards"),
                     "--shards", "0", *TINY_FLAGS]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_build_refuses_federation_overwrite_without_flag(
        self, capsys, shards_path
    ):
        assert main(["corpus", "build", shards_path, "--shards", "3",
                     *TINY_FLAGS]) == 2
        assert "overwrite" in capsys.readouterr().err


class TestBench:
    def test_bench_serial_only_prints_timing(self, capsys):
        assert main(["bench", "fig4", *TINY_FLAGS, "--set", "duration=5"]) == 0
        out = capsys.readouterr().out
        assert "serial (--jobs 1)" in out

    def test_bench_with_jobs_prints_speedup_row(self, capsys):
        assert (
            main(["bench", "fig1", *TINY_FLAGS, "--set", "duration=5",
                  "--jobs", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "parallel (--jobs 2)" in out and "speedup" in out


class TestProfile:
    """`--profile` surfaces: run, bench, and corpus info telemetry."""

    def test_run_profile_renders_counters_and_spans(self, capsys):
        assert main(["run", "table1", *TINY_FLAGS, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile: table1 (repro-profile v1" in out
        assert "scheme.apply_calls" in out
        assert "cell[app=browsing]" in out
        assert "scenario.generate" in out

    def test_run_profile_output_writes_v1_payload(self, capsys, tmp_path):
        path = tmp_path / "table1.profile.json"
        assert (
            main(["run", "table1", *TINY_FLAGS,
                  "--profile-output", str(path)])
            == 0
        )
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-profile"
        assert payload["version"] == 1
        assert payload["experiment"] == "table1"
        assert payload["counters"]["executor.cells_run"] == 7
        assert len(payload["cells"]) == 7
        # --profile-output implies --profile, so the text render shows too.
        assert "profile: table1" in capsys.readouterr().out

    def test_run_format_json_embeds_profile_key(self, capsys):
        assert main(["run", "table1", *TINY_FLAGS, "--profile",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"]["experiment"] == "table1"

    def test_run_without_profile_has_no_profile_key(self, capsys):
        assert main(["run", "table1", *TINY_FLAGS, "--format", "json"]) == 0
        assert "profile" not in json.loads(capsys.readouterr().out)

    def test_bench_profile_spans_carry_durations(self, capsys):
        assert main(["bench", "table1", *TINY_FLAGS, "--jobs", "1",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile: table1" in out
        assert " ms]" in out  # wall-clock sink attached on the serial leg

    def test_corpus_info_profile_shows_store_gauges(
        self, capsys, tmp_path_factory
    ):
        path = str(tmp_path_factory.mktemp("cli-profile") / "tiny.store")
        assert main(["corpus", "build", path, *TINY_FLAGS]) == 0
        capsys.readouterr()
        assert main(["corpus", "info", path, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "store.bytes_mapped" in out
        assert "proc.store.opens" in out
        assert main(["corpus", "info", path, "--profile",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"]["gauges"]["store.traces_stored"] == 14


class TestLint:
    """Exit-code contract: 0 clean, 1 findings, 2 engine error."""

    @pytest.fixture()
    def bad_file(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import numpy as np\n_taint = np.random.rand(3)\n")
        return str(path)

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "0 finding(s) (0 error(s))" in captured.err

    def test_clean_tree_json_schema(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["count"] == 0 and payload["errors"] == 0
        assert len(payload["rules"]) == 7

    def test_findings_exit_one_with_clickable_location(self, capsys, bad_file):
        assert main(["lint", bad_file]) == 1
        captured = capsys.readouterr()
        assert f"{bad_file}:2:9: global-rng [error]:" in captured.out
        assert "1 finding(s) (1 error(s))" in captured.err

    def test_findings_json_carries_location_fields(self, capsys, bad_file):
        assert main(["lint", bad_file, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["findings"]
        assert entry["file"] == bad_file
        assert (entry["line"], entry["col"]) == (2, 9)
        assert entry["rule"] == "global-rng" and entry["severity"] == "error"

    def test_rules_subset_narrows_the_run(self, capsys, bad_file):
        # The planted violation is R1-only; a run restricted to R2
        # must pass it, and say which rules actually ran.
        assert main(["lint", bad_file, "--rules", "nondeterminism"]) == 0
        assert "[rules: nondeterminism]" in capsys.readouterr().err

    def test_unknown_rule_is_a_loud_usage_error(self, capsys):
        assert main(["lint", "--rules", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "valid rules" in err and "global-rng" in err

    def test_empty_rules_selection_exits_two(self, capsys):
        assert main(["lint", "--rules", ","]) == 2
        assert "no rules selected" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_unparseable_file_is_a_finding_not_a_crash(self, capsys, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        assert main(["lint", str(path)]) == 1
        assert "syntax-error" in capsys.readouterr().out

    def test_list_rules_renders_the_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for token in ("R1", "R7", "global-rng", "spec-literals", "allow[rule]"):
            assert token in out

    def test_list_rules_json_is_parseable(self, capsys):
        assert main(["lint", "--list-rules", "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["code"] for e in entries] == [f"R{i}" for i in range(1, 8)]
        assert {"name", "severity", "summary", "invariant"} <= set(entries[0])
